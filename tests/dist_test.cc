// Tests for the distributed substrate: codec round-trips, the store's
// semantics and fault injection, and end-to-end cross-site deadlock
// detection with fault tolerance (§5.2).
#include <gtest/gtest.h>

#include <atomic>

#include "dist/codec.h"
#include "dist/site.h"
#include "phaser/phaser.h"
#include "runtime/task.h"
#include "util/rng.h"

namespace armus::dist {
namespace {

using namespace std::chrono_literals;

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

// --- codec -------------------------------------------------------------------

TEST(CodecTest, RoundTripsEmpty) {
  EXPECT_TRUE(decode_statuses(encode_statuses({})).empty());
}

TEST(CodecTest, RoundTripsStatuses) {
  std::vector<BlockedStatus> in{
      status(1, {{10, 1}}, {{10, 1}, {11, 0}}),
      status(2, {{11, 3}, {12, 9}}, {}),
      status(300, {}, {{1, 7}}),
  };
  auto out = decode_statuses(encode_statuses(in));
  EXPECT_EQ(in, out);
}

TEST(CodecTest, RejectsTruncatedInput) {
  std::string bytes = encode_statuses({status(1, {{10, 1}}, {})});
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_statuses(bytes), std::runtime_error);
}

TEST(CodecTest, RejectsTrailingGarbage) {
  std::string bytes = encode_statuses({status(1, {{10, 1}}, {})});
  bytes += "xx";
  EXPECT_THROW(decode_statuses(bytes), std::runtime_error);
}

TEST(CodecTest, RejectsBogusCounts) {
  std::string bytes(8, '\xff');  // count = 2^64-1
  EXPECT_THROW(decode_statuses(bytes), std::runtime_error);
}

// --- delta frames ------------------------------------------------------------

TEST(DeltaCodecTest, RoundTripsUpsertsAndRemovals) {
  SliceDelta in;
  in.upserts = {status(2, {{1, 2}}, {{1, 2}}), status(7, {{3, 1}}, {})};
  in.removals = {4, 9};
  SliceDelta out = decode_delta(encode_delta(in));
  EXPECT_EQ(out.upserts, in.upserts);
  EXPECT_EQ(out.removals, in.removals);
}

TEST(DeltaCodecTest, RejectsTruncationAndTrailingGarbage) {
  SliceDelta delta;
  delta.upserts = {status(2, {{1, 2}}, {{1, 2}})};
  delta.removals = {9};
  std::string bytes = encode_delta(delta);
  for (std::size_t cut = 1; cut <= bytes.size(); ++cut) {
    EXPECT_THROW(decode_delta(std::string_view(bytes).substr(0, bytes.size() - cut)),
                 CodecError);
  }
  EXPECT_THROW(decode_delta(bytes + "x"), CodecError);
}

TEST(DeltaCodecTest, DiffThenApplyReconstructsAnyBatchPair) {
  // For arbitrary sorted batches `from` and `to`:
  //   apply_delta(from, diff_statuses(from, to)) == to,
  // including through an encode/decode of the delta frame.
  util::Xoshiro256 rng(7);
  for (int round = 0; round < 200; ++round) {
    auto random_batch = [&rng]() {
      std::vector<BlockedStatus> batch;
      std::size_t count = rng.below(10);
      for (TaskId t = 1; batch.size() < count; ++t) {
        if (rng.chance(0.5)) {
          batch.push_back(status(t, {{1 + rng.below(4), 1 + rng.below(3)}},
                                 {{1 + rng.below(4), rng.below(3)}}));
        }
      }
      return batch;
    };
    std::vector<BlockedStatus> from = random_batch();
    std::vector<BlockedStatus> to = random_batch();
    SliceDelta delta = decode_delta(encode_delta(diff_statuses(from, to)));
    EXPECT_EQ(apply_delta(from, delta), to) << "round " << round;
  }
}

TEST(DeltaCodecTest, EmptyDiffForIdenticalBatches) {
  std::vector<BlockedStatus> batch{status(1, {{1, 1}}, {{2, 0}})};
  EXPECT_TRUE(diff_statuses(batch, batch).empty());
}

// --- store -------------------------------------------------------------------

TEST(StoreTest, SlicesAreDisjointPerSite) {
  Store store;
  store.put_slice(1, "aaa");
  store.put_slice(2, "bbb");
  store.put_slice(1, "ccc");  // overwrites site 1 only
  auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].payload, "ccc");
  EXPECT_EQ(snapshot[0].version, 2u);
  EXPECT_EQ(snapshot[1].payload, "bbb");
  EXPECT_EQ(snapshot[1].version, 1u);
}

TEST(StoreTest, RemoveSliceDropsSite) {
  Store store;
  store.put_slice(1, "a");
  store.put_slice(2, "b");
  store.remove_slice(1);
  auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].site, 2u);
}

TEST(StoreTest, FailureInjection) {
  Store store;
  store.put_slice(1, "a");
  store.set_available(false);
  EXPECT_THROW(store.put_slice(1, "b"), StoreUnavailableError);
  EXPECT_THROW(store.snapshot(), StoreUnavailableError);
  store.set_available(true);
  // Recovery: previous data survived the outage.
  auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].payload, "a");
}

TEST(StoreTest, CountsOperations) {
  Store store;
  store.put_slice(1, "a");
  store.put_slice(2, "b");
  (void)store.snapshot();
  EXPECT_EQ(store.writes(), 2u);
  EXPECT_EQ(store.reads(), 1u);
}

// --- slice cache -------------------------------------------------------------

TEST(SliceCacheTest, OnlyRedecodesChangedSlices) {
  Store store;
  store.put_slice(1, encode_statuses({status(1, {{1, 1}}, {})}));
  store.put_slice(2, encode_statuses({status(2, {{2, 1}}, {})}));

  SliceCache cache;
  cache.apply(store.snapshot_since(0));
  EXPECT_EQ(cache.merged().size(), 2u);
  EXPECT_EQ(cache.decodes(), 2u);

  // Unchanged snapshot: merged view served entirely from the cache.
  for (int i = 0; i < 5; ++i) {
    cache.apply(store.snapshot_since(0));
    EXPECT_EQ(cache.merged_count(), 2u);
  }
  EXPECT_EQ(cache.decodes(), 2u);

  // One slice republished → exactly one further decode.
  store.put_slice(2, encode_statuses({status(2, {{2, 2}}, {}),
                                      status(3, {{2, 2}}, {})}));
  cache.apply(store.snapshot_since(0));
  EXPECT_EQ(cache.merged().size(), 3u);
  EXPECT_EQ(cache.decodes(), 3u);
}

TEST(SliceCacheTest, EvictsRemovedSites) {
  Store store;
  store.put_slice(1, encode_statuses({status(1, {{1, 1}}, {})}));
  store.put_slice(2, encode_statuses({status(2, {{2, 1}}, {})}));
  SliceCache cache;
  cache.apply(store.snapshot_since(0));
  EXPECT_EQ(cache.merged_count(), 2u);
  store.remove_slice(1);
  cache.apply(store.snapshot_since(0));
  EXPECT_EQ(cache.merged_count(), 1u);
  EXPECT_EQ(cache.merged()[0].task, 2u);
}

TEST(SliceCacheTest, RemembersCorruptVerdictUntilRepublish) {
  Store store;
  store.put_slice(1, "not a valid payload");
  store.put_slice(2, encode_statuses({status(2, {{2, 1}}, {})}));
  SliceCache cache;
  int corrupt_reports = 0;
  auto on_corrupt = [&](SiteId, const CodecError&) { ++corrupt_reports; };

  for (int i = 0; i < 3; ++i) {
    cache.apply(store.snapshot_since(0), on_corrupt);
    EXPECT_EQ(cache.merged().size(), 1u);
  }
  // The corrupt slice was decoded (and reported) once, not per call.
  EXPECT_EQ(corrupt_reports, 1);
  EXPECT_EQ(cache.decodes(), 2u);

  // A healthy republish of the bad site clears the verdict.
  store.put_slice(1, encode_statuses({status(1, {{1, 1}}, {})}));
  cache.apply(store.snapshot_since(0), on_corrupt);
  EXPECT_EQ(cache.merged().size(), 2u);
  EXPECT_EQ(corrupt_reports, 1);
}

TEST(SliceCacheTest, PropagatesCodecErrorWithoutCallback) {
  Store store;
  store.put_slice(1, "garbage");
  SliceCache cache;
  EXPECT_THROW(cache.apply(store.snapshot_since(0)), CodecError);
  // Not cached as success: the next call still fails.
  EXPECT_THROW(cache.apply(store.snapshot_since(0)), CodecError);
}

TEST(SliceCacheTest, ClearForcesRedecodeDespiteMatchingVersions) {
  // The restart case: after clear(), a slice whose version *collides*
  // with the previously cached one (a different store lifetime) must be
  // re-decoded, not served from the stale entry.
  Store store;
  store.put_slice(1, encode_statuses({status(1, {{1, 1}}, {})}));
  SliceCache cache;
  cache.apply(store.snapshot_since(0));
  EXPECT_EQ(cache.decodes(), 1u);

  Store reborn;  // fresh lifetime, same site, same slice version 1
  reborn.put_slice(1, encode_statuses({status(9, {{9, 1}}, {})}));
  cache.clear();
  cache.apply(reborn.snapshot_since(0));
  EXPECT_EQ(cache.decodes(), 2u);
  ASSERT_EQ(cache.merged().size(), 1u);
  EXPECT_EQ(cache.merged()[0].task, 9u);
}

TEST(SharedStoreTest, BlockedCountIsCachedByVersion) {
  auto backing = std::make_shared<Store>();
  SharedStore a(backing, 0);
  SharedStore b(backing, 1);
  a.set_blocked(status(1, {{1, 1}}, {{1, 1}}));
  b.set_blocked(status(2, {{2, 1}}, {{2, 1}}));

  (void)a.blocked_count();
  std::uint64_t baseline = a.decode_count();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.blocked_count(), 2u);
    EXPECT_EQ(a.snapshot().size(), 2u);
  }
  EXPECT_EQ(a.decode_count(), baseline);  // nothing changed, nothing decoded

  b.set_blocked(status(3, {{2, 1}}, {{2, 1}}));  // one slice changes
  EXPECT_EQ(a.blocked_count(), 3u);
  EXPECT_EQ(a.decode_count(), baseline + 1);
}

// --- sites -------------------------------------------------------------------

/// Plants one half of a 2-task cross-site cycle on each site's verifier.
void plant_cross_site_cycle(Site& a, Site& b) {
  a.verifier().state().set_blocked(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  b.verifier().state().set_blocked(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
}

TEST(SiteTest, DetectsCrossSiteDeadlock) {
  auto store = std::make_shared<Store>();
  Site::Config ca, cb;
  ca.id = 0;
  cb.id = 1;
  Site a(ca, store), b(cb, store);
  plant_cross_site_cycle(a, b);

  // Drive the protocol by hand: publish both slices, then check at both.
  a.publish_now();
  b.publish_now();
  a.check_now();
  b.check_now();

  ASSERT_EQ(a.reported().size(), 1u);
  ASSERT_EQ(b.reported().size(), 1u);
  EXPECT_EQ(a.reported()[0].tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(b.reported()[0].tasks, (std::vector<TaskId>{1, 2}));
}

TEST(SiteTest, NoSiteSeesTheCycleFromItsLocalHalfAlone) {
  auto store = std::make_shared<Store>();
  Site::Config ca, cb;
  ca.id = 0;
  cb.id = 1;
  Site a(ca, store), b(cb, store);
  plant_cross_site_cycle(a, b);

  a.publish_now();  // only site a's slice is in the store
  a.check_now();
  EXPECT_TRUE(a.reported().empty());  // half a cycle is not a deadlock
}

TEST(SiteTest, PeriodicLoopsFindTheDeadlock) {
  auto store = std::make_shared<Store>();
  std::atomic<int> callbacks{0};
  Site::Config ca, cb;
  ca.id = 0;
  ca.publish_period = 5ms;
  ca.check_period = 5ms;
  ca.on_deadlock = [&](const DeadlockReport&) { ++callbacks; };
  cb = ca;
  cb.id = 1;
  cb.on_deadlock = nullptr;
  Site a(ca, store), b(cb, store);
  plant_cross_site_cycle(a, b);
  a.start();
  b.start();
  for (int i = 0; i < 400 && callbacks.load() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  a.stop();
  b.stop();
  EXPECT_GE(callbacks.load(), 1);
  EXPECT_EQ(a.stats().deadlocks_found, 1u);  // deduplicated
}

TEST(SiteTest, SurvivesStoreOutage) {
  auto store = std::make_shared<Store>();
  Site::Config config;
  config.id = 0;
  Site site(config, store);
  site.verifier().state().set_blocked(status(1, {{1, 1}}, {{1, 1}}));

  store->set_available(false);
  site.publish_now();  // absorbed
  site.check_now();    // absorbed
  EXPECT_GE(site.stats().store_failures, 2u);

  store->set_available(true);
  site.publish_now();
  site.check_now();
  EXPECT_EQ(site.stats().publishes, 1u);
  EXPECT_EQ(site.stats().checks, 1u);
}

TEST(SiteTest, SiteFailureLeavesOthersOperational) {
  auto store = std::make_shared<Store>();
  Site::Config ca, cb;
  ca.id = 0;
  cb.id = 1;
  auto a = std::make_unique<Site>(ca, store);
  Site b(cb, store);
  plant_cross_site_cycle(*a, b);
  a->publish_now();
  a.reset();  // site a dies; its slice persists in the store
  b.publish_now();
  b.check_now();
  ASSERT_EQ(b.reported().size(), 1u);  // b still detects the global cycle
}

TEST(ClusterTest, BuildsAndRunsNSites) {
  Cluster::Config config;
  config.site_count = 4;
  config.publish_period = 5ms;
  config.check_period = 5ms;
  std::atomic<int> reports{0};
  config.on_deadlock = [&](SiteId, const DeadlockReport&) { ++reports; };
  Cluster cluster(config);
  EXPECT_EQ(cluster.size(), 4u);
  plant_cross_site_cycle(cluster.site(0), cluster.site(1));
  cluster.start();
  for (int i = 0; i < 400 && reports.load() < 4; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  cluster.stop();
  // Every site checks independently — all four must find the deadlock.
  EXPECT_EQ(reports.load(), 4);
  EXPECT_EQ(cluster.total_reports(), 4u);
}

// --- end-to-end: real phaser deadlock across sites ------------------------------

TEST(DistEndToEndTest, CrossSitePhaserDeadlockDetected) {
  Cluster::Config config;
  config.site_count = 2;
  config.publish_period = 5ms;
  config.check_period = 5ms;
  Cluster cluster(config);
  cluster.start();

  // A phaser spanning both sites. Task A (site 0) and task B (site 1) each
  // wait at a barrier the other never arrives at.
  auto p = ph::Phaser::create(&cluster.site(0).verifier());
  auto q = ph::Phaser::create(&cluster.site(0).verifier());

  // Start gate: neither body runs until both tasks are registered on both
  // phasers, or an early arrival could make the second registration look
  // like a clock rewind.
  std::atomic<bool> start{false};

  std::atomic<bool> resolved{false};
  rt::Task ta = rt::spawn_with(
      [&](TaskId child) {
        p->register_task(child, 0);
        q->register_task(child, 0);
      },
      [&] {
        while (!start.load()) std::this_thread::yield();
        TaskId self = rt::current_task();
        p->arrive(self);
        p->await(self, 1);  // site-0 task blocked on p
        // The rescue may have deregistered us from q already.
        if (q->is_registered(self)) q->arrive_and_deregister(self);
        if (p->is_registered(self)) p->deregister(self);
      },
      &cluster.site(0).verifier(), "site0-task");
  rt::Task tb = rt::spawn_with(
      [&](TaskId child) {
        p->register_task(child, 0);
        q->register_task(child, 0);
      },
      [&] {
        while (!start.load()) std::this_thread::yield();
        TaskId self = rt::current_task();
        q->arrive(self);
        q->await(self, 1);  // site-1 task blocked on q -> cycle
        if (p->is_registered(self)) p->arrive_and_deregister(self);
        if (q->is_registered(self)) q->deregister(self);
      },
      &cluster.site(1).verifier(), "site1-task");

  start.store(true);

  // Wait for any site to report, then resolve by advancing from outside
  // (deregistering the stragglers), so the test terminates.
  for (int i = 0; i < 600 && cluster.total_reports() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  std::size_t reports = cluster.total_reports();
  // Resolve: drop task A from q (it has not arrived there) so task B wakes;
  // then A wakes in turn.
  if (ta.id() != kInvalidTask && q->is_registered(ta.id())) {
    q->deregister(ta.id());
  }
  if (tb.id() != kInvalidTask && p->is_registered(tb.id())) {
    p->deregister(tb.id());
  }
  resolved = true;
  ta.join();
  tb.join();
  cluster.stop();
  EXPECT_GE(reports, 1u);
  EXPECT_TRUE(resolved.load());
}

// --- change-narrowed reads (snapshot_since) -----------------------------------

TEST(SnapshotSinceTest, ReturnsOnlySlicesChangedAfterTheGivenVersion) {
  Store store;
  EXPECT_EQ(store.version(), 1u);  // empty store, counter starts at 1

  store.put_slice(1, "a");
  std::uint64_t v1 = store.version();
  store.put_slice(2, "b");
  std::uint64_t v2 = store.version();
  EXPECT_GT(v2, v1);

  DeltaSnapshot all = store.snapshot_since(0);
  EXPECT_EQ(all.version, v2);
  EXPECT_NE(all.generation, 0u);  // versioned stores always report one
  ASSERT_EQ(all.changed.size(), 2u);
  EXPECT_EQ(all.live_sites, (std::vector<SiteId>{1, 2}));

  DeltaSnapshot none = store.snapshot_since(v2);
  EXPECT_EQ(none.version, v2);
  EXPECT_EQ(none.generation, all.generation);  // stable per store lifetime
  EXPECT_TRUE(none.changed.empty());
  EXPECT_EQ(none.live_sites, (std::vector<SiteId>{1, 2}));

  DeltaSnapshot since_v1 = store.snapshot_since(v1);
  ASSERT_EQ(since_v1.changed.size(), 1u);
  EXPECT_EQ(since_v1.changed[0].site, 2u);
}

TEST(SnapshotSinceTest, RemovalAdvancesTheVersionAndShrinksTheLiveList) {
  Store store;
  store.put_slice(1, "a");
  store.put_slice(2, "b");
  std::uint64_t v = store.version();

  store.remove_slice(1);
  DeltaSnapshot delta = store.snapshot_since(v);
  EXPECT_GT(delta.version, v);  // the removal is itself a change
  EXPECT_TRUE(delta.changed.empty());
  EXPECT_EQ(delta.live_sites, (std::vector<SiteId>{2}));
}

TEST(SnapshotSinceTest, ThrowsDuringOutage) {
  Store store;
  store.set_available(false);
  EXPECT_THROW(store.snapshot_since(0), StoreUnavailableError);
}

TEST(SnapshotSinceTest, GenerationIsPinnableForWireTests) {
  Store::Config config;
  config.generation = 42;
  Store store(config);
  EXPECT_EQ(store.snapshot_since(0).generation, 42u);
}

TEST(SnapshotSinceTest, UnversionedFallbackReturnsEverythingEveryTime) {
  // A SliceStore subclass that only implements the mandatory interface
  // gets the conservative default: full reads, version 0, never skipped.
  class MinimalStore : public SliceStore {
   public:
    std::uint64_t put_slice(SiteId site, std::string payload) override {
      slices_[site] = Slice{site, std::move(payload), ++counter_};
      return counter_;
    }
    void remove_slice(SiteId site) override { slices_.erase(site); }
    [[nodiscard]] std::vector<Slice> snapshot() const override {
      std::vector<Slice> out;
      for (const auto& [site, slice] : slices_) out.push_back(slice);
      return out;
    }

   private:
    std::map<SiteId, Slice> slices_;
    std::uint64_t counter_ = 0;
  };

  MinimalStore store;
  store.put_slice(3, "x");
  DeltaSnapshot delta = store.snapshot_since(12345);
  EXPECT_EQ(delta.version, 0u);     // unversioned sentinel
  EXPECT_EQ(delta.generation, 0u);  // no lifetime tracking either
  ASSERT_EQ(delta.changed.size(), 1u);
  EXPECT_EQ(delta.live_sites, (std::vector<SiteId>{3}));
  EXPECT_THROW(store.put_slice_delta(3, 1, ""), SliceBaseMismatchError);
}

// --- delta publishes against the in-process store -----------------------------

TEST(PutSliceDeltaTest, AppliesTheDeltaToTheStoredBatch) {
  Store store;
  std::vector<BlockedStatus> base{
      status(1, {{1, 1}}, {{1, 1}}),
      status(2, {{2, 1}}, {{2, 1}}),
  };
  std::uint64_t v1 = store.put_slice(7, encode_statuses(base));

  SliceDelta delta;
  delta.upserts = {status(2, {{2, 2}}, {{2, 2}})};
  delta.removals = {1};
  std::uint64_t v2 = store.put_slice_delta(7, v1, encode_delta(delta));
  EXPECT_GT(v2, v1);

  auto slice = store.get_slice(7);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(decode_statuses(slice->payload),
            (std::vector<BlockedStatus>{status(2, {{2, 2}}, {{2, 2}})}));
}

TEST(PutSliceDeltaTest, RejectsWrongBaseWithTheCurrentVersion) {
  Store store;
  std::uint64_t v1 = store.put_slice(7, encode_statuses({}));
  std::uint64_t v2 = store.put_slice(7, encode_statuses({}));
  ASSERT_GT(v2, v1);
  try {
    store.put_slice_delta(7, v1, encode_delta({}));
    FAIL() << "expected SliceBaseMismatchError";
  } catch (const SliceBaseMismatchError& e) {
    EXPECT_EQ(e.current_version(), v2);
  }
  // Unknown site: mismatch too (current 0), never a crash.
  EXPECT_THROW(store.put_slice_delta(99, 1, encode_delta({})),
               SliceBaseMismatchError);
}

// --- SliceCache::apply --------------------------------------------------------

TEST(SliceCacheTest, ApplyDecodesOnlyChangedSlicesAndEvictsDeadSites) {
  Store store;
  store.put_slice(1, encode_statuses({status(1, {{1, 1}}, {})}));
  store.put_slice(2, encode_statuses({status(2, {{2, 1}}, {})}));

  SliceCache cache;
  cache.apply(store.snapshot_since(0));
  EXPECT_EQ(cache.decodes(), 2u);
  EXPECT_EQ(cache.merged_count(), 2u);
  std::uint64_t seen = store.version();

  // Nothing changed: an empty delta costs zero decodes.
  cache.apply(store.snapshot_since(seen));
  EXPECT_EQ(cache.decodes(), 2u);

  // One site republishes, another dies: one decode, one eviction.
  store.put_slice(2, encode_statuses({status(2, {{2, 2}}, {}),
                                      status(3, {{2, 2}}, {})}));
  store.remove_slice(1);
  cache.apply(store.snapshot_since(seen));
  EXPECT_EQ(cache.decodes(), 3u);
  auto merged = cache.merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].task, 2u);
  EXPECT_EQ(merged[1].task, 3u);
}

// --- site publish skipping / delta publishing / check skipping ----------------

TEST(SitePublishTest, UnchangedSliceSkipsTheStoreWrite) {
  auto store = std::make_shared<Store>();
  Site::Config config;
  config.id = 1;
  Site site(config, store);
  site.verifier().state().set_blocked(status(1, {{1, 1}}, {{1, 1}}));

  ASSERT_TRUE(site.publish_now());
  std::uint64_t writes = store->writes();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(site.publish_now());
  EXPECT_EQ(store->writes(), writes);  // not a single further store write
  EXPECT_EQ(site.stats().publishes, 1u);
  EXPECT_EQ(site.stats().publishes_skipped, 5u);

  // A real change publishes again.
  site.verifier().state().set_blocked(status(2, {{1, 1}}, {{1, 0}}));
  ASSERT_TRUE(site.publish_now());
  EXPECT_EQ(site.stats().publishes, 2u);
}

TEST(SitePublishTest, SmallChangeOnALargeSliceGoesOutAsADelta) {
  auto store = std::make_shared<Store>();
  Site::Config config;
  config.id = 1;
  Site site(config, store);
  // Enough tasks that the payload clears delta_min_bytes.
  for (TaskId t = 1; t <= 64; ++t) {
    site.verifier().state().set_blocked(status(t, {{t, 1}}, {{t, 1}}));
  }
  ASSERT_TRUE(site.publish_now());
  EXPECT_EQ(site.stats().delta_publishes, 0u);  // first publish is full

  site.verifier().state().set_blocked(status(1, {{1, 2}}, {{1, 2}}));
  ASSERT_TRUE(site.publish_now());
  EXPECT_EQ(site.stats().delta_publishes, 1u);

  // The stored slice must equal the full encoding of the site's state —
  // readers cannot tell a delta publish from a full one.
  auto slice = store->get_slice(1);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->payload, encode_statuses(site.verifier().current_snapshot()));
}

TEST(SitePublishTest, FullSliceAfterBaseMismatch) {
  auto store = std::make_shared<Store>();
  Site::Config config;
  config.id = 1;
  Site site(config, store);
  for (TaskId t = 1; t <= 64; ++t) {
    site.verifier().state().set_blocked(status(t, {{t, 1}}, {{t, 1}}));
  }
  ASSERT_TRUE(site.publish_now());

  // Someone else overwrote our slice (e.g. a zombie writer): the site's
  // base is stale, so the delta is rejected and the full payload goes out.
  store->put_slice(1, encode_statuses({}));
  site.verifier().state().set_blocked(status(1, {{1, 2}}, {{1, 2}}));
  ASSERT_TRUE(site.publish_now());
  EXPECT_EQ(site.stats().delta_publishes, 0u);
  auto slice = store->get_slice(1);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(decode_statuses(slice->payload).size(), 64u);
}

TEST(SiteCheckTest, UnchangedStoreSkipsChecksAndFetchesNothing) {
  auto store = std::make_shared<Store>();
  Site::Config config;
  config.id = 0;
  Site a(config, store);
  config.id = 1;
  Site b(config, store);
  a.verifier().state().set_blocked(status(1, {{1, 1}}, {{2, 0}}));
  b.verifier().state().set_blocked(status(2, {{2, 1}}, {{1, 0}}));
  ASSERT_TRUE(a.publish_now());
  ASSERT_TRUE(b.publish_now());

  ASSERT_TRUE(b.check_now());
  EXPECT_EQ(b.stats().checks, 1u);
  EXPECT_EQ(b.stats().slices_fetched, 2u);
  EXPECT_EQ(b.reported().size(), 1u);  // the cross-site cycle

  for (int i = 0; i < 5; ++i) ASSERT_TRUE(b.check_now());
  EXPECT_EQ(b.stats().checks, 1u);
  EXPECT_EQ(b.stats().checks_skipped, 5u);
  EXPECT_EQ(b.stats().slices_fetched, 2u);  // nothing re-fetched

  // One site republishes a real change: exactly one slice travels.
  a.verifier().state().set_blocked(status(1, {{1, 2}}, {{2, 0}}));
  ASSERT_TRUE(a.publish_now());
  ASSERT_TRUE(b.check_now());
  EXPECT_EQ(b.stats().checks, 2u);
  EXPECT_EQ(b.stats().slices_fetched, 3u);
}

TEST(SiteCheckTest, SliceRemovalIsSeenDespiteTheSkipPath) {
  auto store = std::make_shared<Store>();
  Site::Config config;
  config.id = 0;
  Site site(config, store);
  store->put_slice(9, encode_statuses({status(90, {{9, 1}}, {})}));

  ASSERT_TRUE(site.check_now());
  ASSERT_TRUE(site.check_now());  // skipped
  EXPECT_EQ(site.stats().checks_skipped, 1u);

  store->remove_slice(9);
  ASSERT_TRUE(site.check_now());  // the removal bumped the store version
  EXPECT_EQ(site.stats().checks, 2u);
}

}  // namespace
}  // namespace armus::dist
