// Tests for the trace fuzzing layer (src/fuzz/): mutator determinism and
// per-operator behaviour, the strict-decode contract checker, corpus
// growth/minimization, and a deterministic smoke run of the full harness —
// the in-repo miniature of the CI fuzz job.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/verifier.h"
#include "fuzz/harness.h"
#include "fuzz/mutator.h"
#include "trace/recorder.h"

namespace armus::fuzz {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "armus_fuzz_test_" + name + "_" +
         std::to_string(::getpid());
}

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

/// A recorded run with a planted cycle, a bystander chain, and a rescue —
/// enough record-type variety to make mutation interesting. Returns the
/// trace bytes.
std::string seed_trace() {
  std::string path = temp_path("seed") + ".trace";
  {
    VerifierConfig config;
    config.mode = VerifyMode::kDetection;
    config.scanner_enabled = false;
    config.on_deadlock = [](const DeadlockReport&) {};
    config.observer = std::make_shared<trace::Recorder>(
        trace::Recorder::Options{path, {{"mode", "fuzz-seed"}}});
    Verifier verifier(config);
    verifier.registry().set_entry(9, 7, 1);
    verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
    verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
    verifier.before_block(status(5, {{10, 1}}, {{10, 1}, {11, 0}}));
    verifier.before_block(status(6, {{11, 1}}, {{11, 1}}));
    verifier.scan_now();
    for (TaskId task : {1, 2, 5, 6}) verifier.after_unblock(task);
    verifier.registry().remove_entry(9, 7);
    verifier.scan_now();
  }
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

// --- Mutator -------------------------------------------------------------

TEST(MutatorTest, DeterministicInTheSeed) {
  std::vector<std::string> pool{seed_trace()};
  Mutator a(42);
  Mutator b(42);
  Mutator c(43);
  bool any_difference = false;
  for (int i = 0; i < 20; ++i) {
    MutationOp op_a = MutationOp::kBitFlip;
    MutationOp op_b = MutationOp::kBitFlip;
    std::string ma = a.mutate(pool, &op_a);
    std::string mb = b.mutate(pool, &op_b);
    EXPECT_EQ(ma, mb);
    EXPECT_EQ(op_a, op_b);
    if (ma != c.mutate(pool)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);  // a different seed walks a different path
}

TEST(MutatorTest, RecordLevelOpsKeepTheTraceDecodable) {
  std::string seed = seed_trace();
  std::size_t records = decode_records(seed).size();
  Mutator mutator(7);

  std::string dropped = mutator.apply(MutationOp::kDropRecord, seed, "");
  EXPECT_EQ(decode_records(dropped).size(), records - 1);

  std::string duplicated =
      mutator.apply(MutationOp::kDuplicateRecord, seed, "");
  EXPECT_EQ(decode_records(duplicated).size(), records + 1);

  std::string reordered = mutator.apply(MutationOp::kReorderSlack, seed, "");
  std::vector<trace::Record> after = decode_records(reordered);
  EXPECT_EQ(after.size(), records);
  // Same multiset of record types — only the order moved.
  auto type_counts = [](const std::vector<trace::Record>& rs) {
    std::vector<int> counts(8, 0);
    for (const trace::Record& r : rs) ++counts[static_cast<int>(r.type)];
    return counts;
  };
  EXPECT_EQ(type_counts(after), type_counts(decode_records(seed)));
}

TEST(MutatorTest, TruncateProducesStrictlyRejectedOrShorterTraces) {
  std::string seed = seed_trace();
  Mutator mutator(11);
  for (int i = 0; i < 30; ++i) {
    std::string mutant = mutator.apply(MutationOp::kTruncate, seed, "");
    ASSERT_LT(mutant.size(), seed.size());
    // The contract in miniature: decode either succeeds or throws
    // TraceError — never anything else.
    try {
      decode_records(mutant);
    } catch (const trace::TraceError&) {
    }
  }
}

TEST(MutatorTest, EncodeDecodeRoundTrip) {
  std::string seed = seed_trace();
  trace::TraceHeader header;
  std::vector<trace::Record> records = decode_records(seed, &header);
  std::string re = encode_trace(header, records);
  EXPECT_EQ(re, seed);  // deltas recompute to the recorded values
}

// --- Contract checker ----------------------------------------------------

TEST(CheckTraceTest, AcceptsARecordedTrace) {
  Verdict verdict;
  EXPECT_EQ(check_trace(seed_trace(), &verdict), std::nullopt);
  EXPECT_TRUE(verdict.decoded);
  EXPECT_GT(verdict.records, 0u);
  // The planted cycle is found under every model.
  for (std::uint64_t cycles : verdict.cycles) EXPECT_EQ(cycles, 1u);
}

TEST(CheckTraceTest, RejectsGarbageCleanly) {
  Verdict verdict;
  EXPECT_EQ(check_trace("definitely not a trace", &verdict), std::nullopt);
  EXPECT_FALSE(verdict.decoded);
}

TEST(CheckTraceTest, CountsTheDecodablePrefixOfATruncatedTrace) {
  std::string seed = seed_trace();
  Verdict whole;
  check_trace(seed, &whole);
  Verdict cut;
  check_trace(seed.substr(0, seed.size() - 3), &cut);
  EXPECT_FALSE(cut.decoded);
  EXPECT_LT(cut.records, whole.records);
}

TEST(MinimizeTest, ShrinksWithoutChangingTheSignature) {
  std::string seed = seed_trace();
  Verdict before;
  check_trace(seed, &before);
  std::string minimized = minimize_trace(seed);
  Verdict after;
  check_trace(minimized, &after);
  EXPECT_EQ(after.signature(), before.signature());
  EXPECT_LE(minimized.size(), seed.size());
  // Garbage input passes through untouched.
  EXPECT_EQ(minimize_trace("garbage"), "garbage");
}

// --- Harness smoke run ---------------------------------------------------

TEST(HarnessTest, SmokeRunHoldsTheContract) {
  Harness::Options options;
  options.seed = 1;
  options.runs = 120;
  options.seeds = {seed_trace()};
  Harness::Stats stats = Harness(options).run();
  EXPECT_TRUE(stats.ok()) << (stats.violations.empty()
                                  ? ""
                                  : stats.violations.front().what);
  EXPECT_EQ(stats.mutants, 120u);
  EXPECT_EQ(stats.decoded + stats.rejected, stats.mutants);
  EXPECT_GT(stats.decoded, 0u);   // record-level ops stay well-formed
  EXPECT_GT(stats.rejected, 0u);  // truncation/bitflips get refused
}

TEST(HarnessTest, GrowsAMinimizedCorpusOnDisk) {
  namespace fs = std::filesystem;
  std::string dir = temp_path("corpus");
  fs::remove_all(dir);
  Harness::Options options;
  options.seed = 3;
  options.runs = 60;
  options.seeds = {seed_trace()};
  options.corpus_dir = dir;
  Harness::Stats stats = Harness(options).run();
  EXPECT_TRUE(stats.ok());
  std::size_t files = 0;
  if (fs::is_directory(dir)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      files += entry.is_regular_file() ? 1 : 0;
    }
  }
  EXPECT_EQ(files, stats.corpus_added);
  EXPECT_GT(stats.corpus_added, 0u);

  // A second run over the persisted corpus treats its entries as seeds:
  // their signatures are known, so the corpus does not duplicate.
  Harness::Stats again = Harness(options).run();
  EXPECT_TRUE(again.ok());
  std::size_t files_after = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    files_after += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(files_after, files + again.corpus_added);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace armus::fuzz
