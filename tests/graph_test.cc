// Unit and property tests for the graph substrate: cycle detection and SCCs
// must agree with a naive reachability-based oracle on random digraphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cycle.h"
#include "graph/dot.h"
#include "util/rng.h"

namespace armus::graph {
namespace {

DiGraph from_edges(std::size_t n, const std::vector<std::pair<Node, Node>>& edges) {
  DiGraph g(n);
  for (auto [u, v] : edges) g.add_edge(u, v);
  return g;
}

// --- find_cycle on known shapes ---------------------------------------------

TEST(CycleTest, EmptyGraphHasNoCycle) {
  DiGraph g;
  EXPECT_FALSE(find_cycle(g).has_value());
  EXPECT_FALSE(has_cycle(g));
}

TEST(CycleTest, SingleNodeNoEdges) {
  DiGraph g(1);
  EXPECT_FALSE(has_cycle(g));
}

TEST(CycleTest, SelfLoopIsALengthOneCycle) {
  // Theorem 4.8 case 1: a task waiting on an event it itself impedes.
  auto g = from_edges(1, {{0, 0}});
  auto cycle = find_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 1u);
  EXPECT_EQ((*cycle)[0], 0);
}

TEST(CycleTest, TwoCycle) {
  auto g = from_edges(2, {{0, 1}, {1, 0}});
  auto cycle = find_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);
}

TEST(CycleTest, ChainIsAcyclic) {
  auto g = from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_FALSE(has_cycle(g));
}

TEST(CycleTest, DiamondIsAcyclic) {
  auto g = from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_FALSE(has_cycle(g));
}

TEST(CycleTest, CycleReachableOnlyFromLaterRoot) {
  // DFS must find the cycle even when the first root explored is acyclic.
  auto g = from_edges(5, {{0, 1}, {2, 3}, {3, 4}, {4, 2}});
  auto cycle = find_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 3u);
}

TEST(CycleTest, ReturnedCycleIsAValidWalk) {
  auto g = from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}});
  auto cycle = find_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  // Every consecutive pair (and the wrap-around) must be an edge.
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    Node u = (*cycle)[i];
    Node v = (*cycle)[(i + 1) % cycle->size()];
    auto out = g.out(u);
    EXPECT_NE(std::find(out.begin(), out.end(), v), out.end())
        << "missing edge " << u << "->" << v;
  }
}

TEST(CycleTest, ParallelEdgesAreHarmless) {
  auto g = from_edges(2, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_TRUE(has_cycle(g));
  EXPECT_EQ(g.num_edges(), 3u);
}

// --- SCCs --------------------------------------------------------------------

TEST(SccTest, DistinctComponents) {
  // {0,1,2} cyclic, {3} alone, {4,5} cyclic.
  auto g = from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 4}});
  SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 3u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_NE(scc.component[0], scc.component[3]);
  EXPECT_EQ(scc.component[4], scc.component[5]);
}

TEST(SccTest, CyclicComponentsFiltersSingletons) {
  auto g = from_edges(5, {{0, 1}, {1, 0}, {2, 2}, {3, 4}});
  auto cyclic = cyclic_components(g);
  ASSERT_EQ(cyclic.size(), 2u);
  std::size_t total = 0;
  for (const auto& comp : cyclic) total += comp.size();
  EXPECT_EQ(total, 3u);  // {0,1} and {2}
}

TEST(SccTest, AcyclicGraphHasNoCyclicComponents) {
  auto g = from_edges(4, {{0, 1}, {1, 2}, {0, 3}, {3, 2}});
  EXPECT_TRUE(cyclic_components(g).empty());
}

// --- dot export ---------------------------------------------------------------

TEST(DotTest, ContainsNodesAndEdges) {
  auto g = from_edges(2, {{0, 1}});
  std::string dot =
      to_dot(g, "test", [](Node v) { return "n" + std::to_string(v); });
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

// --- property: agreement with a naive oracle ---------------------------------

/// O(V^3)-ish oracle: a cycle exists iff some node reaches itself through
/// at least one edge (transitive closure).
bool oracle_has_cycle(const DiGraph& g) {
  std::size_t n = g.num_nodes();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (std::size_t u = 0; u < n; ++u) {
    for (Node v : g.out(static_cast<Node>(u))) {
      reach[u][static_cast<std::size_t>(v)] = true;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (reach[v][v]) return true;
  }
  return false;
}

class RandomGraphCycleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphCycleTest, MatchesOracle) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::size_t n = 1 + rng.below(12);
    double density = rng.uniform() * 0.35;
    DiGraph g(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (rng.chance(density)) {
          g.add_edge(static_cast<Node>(u), static_cast<Node>(v));
        }
      }
    }
    bool expected = oracle_has_cycle(g);
    EXPECT_EQ(has_cycle(g), expected) << "seed=" << GetParam() << " trial=" << trial;
    // SCC view must agree as well.
    EXPECT_EQ(!cyclic_components(g).empty(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphCycleTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace armus::graph
