// Tests for the incremental scan engine: the IncrementalChecker must be
// indistinguishable from the from-scratch builders for any sequence of
// set_blocked/clear_blocked interleaved with checks (the property tests
// below), the change epoch must make unchanged scans free, and the
// BuiltGraph analysis cache must keep avoidance doom checks cheap and
// correct.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "core/dependency_state.h"
#include "core/incremental_checker.h"
#include "core/verifier.h"
#include "util/rng.h"

namespace armus {
namespace {

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

std::vector<BlockedStatus> to_snapshot(
    const std::map<TaskId, BlockedStatus>& state) {
  std::vector<BlockedStatus> snapshot;
  snapshot.reserve(state.size());
  for (const auto& [task, s] : state) snapshot.push_back(s);
  return snapshot;
}

/// Reports in a canonical order with canonical contents, so two result
/// sets can be compared irrespective of SCC enumeration order.
std::vector<std::tuple<std::vector<TaskId>, std::vector<Resource>, GraphModel>>
normalised(const CheckResult& result) {
  std::vector<std::tuple<std::vector<TaskId>, std::vector<Resource>, GraphModel>>
      out;
  for (const DeadlockReport& report : result.reports) {
    out.emplace_back(report.tasks, report.resources, report.model);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void expect_same_result(const CheckResult& incremental,
                        const CheckResult& scratch, const char* context) {
  EXPECT_EQ(incremental.model_used, scratch.model_used) << context;
  EXPECT_EQ(incremental.nodes, scratch.nodes) << context;
  EXPECT_EQ(incremental.edges, scratch.edges) << context;
  EXPECT_EQ(normalised(incremental), normalised(scratch)) << context;
}

BlockedStatus random_status(util::Xoshiro256& rng, TaskId task) {
  BlockedStatus s;
  s.task = task;
  // Small id spaces force collisions: shared phasers, shared events, and
  // the occasional duplicate wait/registration entry.
  std::size_t nwaits = rng.below(3) + (rng.chance(0.8) ? 1 : 0);
  for (std::size_t i = 0; i < nwaits; ++i) {
    s.waits.push_back(Resource{1 + rng.below(5), 1 + rng.below(3)});
  }
  std::size_t nregs = rng.below(4);
  for (std::size_t i = 0; i < nregs; ++i) {
    s.registered.push_back({1 + rng.below(5), rng.below(3)});
  }
  return s;
}

/// The core property: an IncrementalChecker fed an arbitrary sequence of
/// task-level mutations produces, at every check, exactly the result the
/// from-scratch builder computes for the same snapshot.
void run_property_sequence(GraphModel model, IncrementalChecker::Config config,
                           std::uint64_t seed) {
  config.model = model;
  IncrementalChecker incremental(config);
  std::map<TaskId, BlockedStatus> state;
  util::Xoshiro256 rng(seed);

  for (int step = 0; step < 300; ++step) {
    std::uint64_t op = rng.below(10);
    if (op < 5) {
      TaskId task = 1 + rng.below(12);
      state[task] = random_status(rng, task);
    } else if (op < 7) {
      if (!state.empty()) {
        auto it = state.begin();
        std::advance(it, rng.below(state.size()));
        state.erase(it);
      }
    } else {
      std::vector<BlockedStatus> snapshot = to_snapshot(state);
      CheckResult inc = incremental.check(snapshot);
      char context[64];
      std::snprintf(context, sizeof(context), "model %s seed %llu step %d",
                    to_string(model).c_str(),
                    static_cast<unsigned long long>(seed), step);
      if (model == GraphModel::kAuto) {
        // The incremental engine applies the §5.1 density rule to the
        // final edge count, while build_auto may fall back on a prefix;
        // both are sound. Pin (a) exact equality against the from-scratch
        // build of the concrete model the engine chose, and (b) verdict
        // agreement with build_auto.
        ASSERT_TRUE(inc.model_used == GraphModel::kSg ||
                    inc.model_used == GraphModel::kWfg || snapshot.empty())
            << context;
        expect_same_result(inc, check_deadlocks(snapshot, inc.model_used),
                           context);
        EXPECT_EQ(inc.deadlocked(),
                  check_deadlocks(snapshot, GraphModel::kAuto).deadlocked())
            << context;
      } else {
        expect_same_result(inc, check_deadlocks(snapshot, model), context);
      }
    }
  }
}

class IncrementalPropertyTest : public ::testing::TestWithParam<GraphModel> {};

TEST_P(IncrementalPropertyTest, MatchesFromScratchUnderRandomChurn) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_property_sequence(GetParam(), IncrementalChecker::Config{}, seed);
  }
}

TEST_P(IncrementalPropertyTest, MatchesFromScratchWhenAlwaysApplyingDeltas) {
  // Never rebuild (beyond the unavoidable first build): every mutation goes
  // through the per-task add/remove paths — the strictest exercise of the
  // counted-edge bookkeeping.
  IncrementalChecker::Config config;
  config.rebuild_fraction = 1e9;
  config.rebuild_min_tasks = 1u << 30;
  for (std::uint64_t seed = 100; seed <= 104; ++seed) {
    run_property_sequence(GetParam(), config, seed);
  }
}

TEST_P(IncrementalPropertyTest, MatchesFromScratchWhenAlwaysRebuilding) {
  IncrementalChecker::Config config;
  config.rebuild_fraction = 0.0;
  config.rebuild_min_tasks = 0;
  for (std::uint64_t seed = 200; seed <= 202; ++seed) {
    run_property_sequence(GetParam(), config, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, IncrementalPropertyTest,
                         ::testing::Values(GraphModel::kWfg, GraphModel::kSg,
                                           GraphModel::kGrg,
                                           GraphModel::kAuto),
                         [](const auto& info) { return to_string(info.param); });

// --- targeted incremental-maintenance cases ----------------------------------

TEST(IncrementalCheckerTest, UnchangedSnapshotIsServedFromCache) {
  IncrementalChecker checker(GraphModel::kWfg);
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 1}}, {{2, 0}}),
      status(2, {{2, 1}}, {{1, 0}}),
  };
  CheckResult first = checker.check(snapshot);
  EXPECT_TRUE(first.deadlocked());
  EXPECT_EQ(checker.stats().graphs_built, 1u);

  CheckResult second = checker.check(snapshot);
  EXPECT_EQ(checker.stats().graphs_built, 1u);  // no new build
  EXPECT_EQ(checker.stats().unchanged_hits, 1u);
  EXPECT_EQ(normalised(first), normalised(second));
}

TEST(IncrementalCheckerTest, SmallChurnAppliesDeltasInsteadOfRebuilding) {
  IncrementalChecker checker(GraphModel::kSg);
  std::map<TaskId, BlockedStatus> state;
  for (TaskId t = 1; t <= 64; ++t) {
    state[t] = status(t, {{t, 1}}, {{t, 1}, {t + 1, 0}});
  }
  checker.check(to_snapshot(state));
  EXPECT_EQ(checker.stats().full_rebuilds, 1u);

  // One task churns per check: delta application, never a rebuild.
  for (int round = 0; round < 10; ++round) {
    Phase phase = 1 + static_cast<Phase>(round % 2);
    state[1] = status(1, {{1, phase}}, {{1, 1}});
    CheckResult result = checker.check(to_snapshot(state));
    expect_same_result(result, check_deadlocks(to_snapshot(state), GraphModel::kSg),
                       "small churn");
  }
  EXPECT_EQ(checker.stats().full_rebuilds, 1u);
  EXPECT_EQ(checker.stats().delta_applies, 10u);
  EXPECT_EQ(checker.stats().tasks_applied, 10u);
}

TEST(IncrementalCheckerTest, LargeChurnFallsBackToRebuild) {
  IncrementalChecker checker(GraphModel::kWfg);
  std::map<TaskId, BlockedStatus> state;
  for (TaskId t = 1; t <= 40; ++t) state[t] = status(t, {{1, 1}}, {{1, 1}});
  checker.check(to_snapshot(state));

  // Change every task at once: the delta fraction is 1.0, far above the
  // default rebuild threshold.
  for (TaskId t = 1; t <= 40; ++t) state[t] = status(t, {{2, 1}}, {{2, 1}});
  checker.check(to_snapshot(state));
  EXPECT_EQ(checker.stats().full_rebuilds, 2u);
  EXPECT_EQ(checker.stats().delta_applies, 0u);
}

TEST(IncrementalCheckerTest, EmptySnapshotMatchesFromScratch) {
  IncrementalChecker checker(GraphModel::kSg);
  std::vector<BlockedStatus> empty;
  CheckResult result = checker.check(empty);
  EXPECT_FALSE(result.deadlocked());
  EXPECT_EQ(result.nodes, 0u);
  EXPECT_EQ(result.model_used, GraphModel::kWfg);  // the scratch default

  // Populate, then drain back to empty through the delta path.
  std::vector<BlockedStatus> two{
      status(1, {{1, 1}}, {{2, 0}}),
      status(2, {{2, 1}}, {{1, 0}}),
  };
  EXPECT_TRUE(checker.check(two).deadlocked());
  EXPECT_FALSE(checker.check(empty).deadlocked());
  EXPECT_EQ(checker.built().nodes(), 0u);
}

TEST(IncrementalCheckerTest, DuplicateWaitAndRegistrationEntriesSurviveChurn) {
  // Duplicate entries must contribute symmetrically on add and remove.
  IncrementalChecker checker(GraphModel::kGrg);
  std::map<TaskId, BlockedStatus> state;
  state[1] = status(1, {{1, 1}, {1, 1}}, {{2, 0}, {2, 0}});
  state[2] = status(2, {{2, 1}}, {{1, 0}, {1, 0}});
  expect_same_result(checker.check(to_snapshot(state)),
                     check_deadlocks(to_snapshot(state), GraphModel::kGrg),
                     "duplicates present");
  state.erase(1);
  expect_same_result(checker.check(to_snapshot(state)),
                     check_deadlocks(to_snapshot(state), GraphModel::kGrg),
                     "duplicates removed");
}

TEST(IncrementalCheckerTest, BuiltGraphSupportsDoomQueries) {
  IncrementalChecker checker(GraphModel::kWfg);
  std::vector<BlockedStatus> snapshot{
      status(1, {{1, 1}}, {{2, 0}}),
      status(2, {{2, 1}}, {{1, 0}}),
      status(3, {{9, 1}}, {}),  // waits on an event nobody impedes
  };
  checker.check(snapshot);
  EXPECT_TRUE(task_is_doomed(checker.built(), snapshot, 1));
  EXPECT_TRUE(task_is_doomed(checker.built(), snapshot, 2));
  EXPECT_FALSE(task_is_doomed(checker.built(), snapshot, 3));
  EXPECT_FALSE(task_is_doomed(checker.built(), snapshot, 42));  // unknown task
}

// --- the change epoch (StateStore::version + TaskRegistry::version) -----------

TEST(ChangeEpochTest, DependencyStateBumpsOnlyOnRealChanges) {
  DependencyState store;
  std::uint64_t v0 = store.version();
  EXPECT_NE(v0, StateStore::kUnversioned);

  store.set_blocked(status(1, {{1, 1}}, {}));
  std::uint64_t v1 = store.version();
  EXPECT_GT(v1, v0);

  // Re-publishing the identical status (the avoidance recheck pattern)
  // must not advance the epoch.
  store.set_blocked(status(1, {{1, 1}}, {}));
  EXPECT_EQ(store.version(), v1);

  store.set_blocked(status(1, {{1, 2}}, {}));
  std::uint64_t v2 = store.version();
  EXPECT_GT(v2, v1);

  store.clear_blocked(99);  // absent: no change
  EXPECT_EQ(store.version(), v2);
  store.clear_blocked(1);
  EXPECT_GT(store.version(), v2);

  std::uint64_t v3 = store.version();
  store.clear();  // already empty: no change
  EXPECT_EQ(store.version(), v3);
  store.set_blocked(status(2, {{1, 1}}, {}));
  store.clear();
  EXPECT_GT(store.version(), v3);
}

TEST(ChangeEpochTest, TaskRegistryBumpsOnlyOnRealChanges) {
  TaskRegistry registry;
  std::uint64_t v0 = registry.version();

  registry.set_entry(1, 7, 3);
  std::uint64_t v1 = registry.version();
  EXPECT_GT(v1, v0);
  registry.set_entry(1, 7, 3);  // identical: no change
  EXPECT_EQ(registry.version(), v1);
  registry.set_entry(1, 7, 4);
  EXPECT_GT(registry.version(), v1);

  std::uint64_t v2 = registry.version();
  registry.remove_entry(1, 99);  // absent phaser
  registry.remove_entry(2, 7);   // absent task
  EXPECT_EQ(registry.version(), v2);
  registry.remove_entry(1, 7);
  EXPECT_GT(registry.version(), v2);

  std::uint64_t v3 = registry.version();
  registry.remove_task(5);  // absent: no change
  EXPECT_EQ(registry.version(), v3);
}

// --- epoch-skipping scans (the steady-state O(changed) guarantee) -------------

VerifierConfig manual_detection_config() {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;  // driven by scan_now below
  config.on_deadlock = [](const DeadlockReport&) {};
  return config;
}

TEST(EpochSkipTest, UnchangedStateSkipsScansEntirely) {
  Verifier verifier(manual_detection_config());
  verifier.state().set_blocked(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  verifier.state().set_blocked(status(2, {{2, 1}}, {{2, 1}}));

  EXPECT_TRUE(verifier.scan_now());
  Verifier::Stats after_first = verifier.stats();
  EXPECT_EQ(after_first.graphs_built, 1u);
  EXPECT_EQ(after_first.scans_skipped, 0u);

  for (int i = 0; i < 50; ++i) EXPECT_FALSE(verifier.scan_now());
  Verifier::Stats after = verifier.stats();
  EXPECT_EQ(after.scans_skipped, 50u);
  EXPECT_EQ(after.graphs_built, 1u);  // zero builds while nothing changed
  EXPECT_EQ(after.checks, after_first.checks);  // zero snapshot analyses too
}

TEST(EpochSkipTest, IdenticalRepublishKeepsScansSkippable) {
  Verifier verifier(manual_detection_config());
  BlockedStatus s = status(1, {{1, 1}}, {{1, 1}});
  verifier.state().set_blocked(s);
  EXPECT_TRUE(verifier.scan_now());

  verifier.state().set_blocked(s);  // identical re-publish
  EXPECT_FALSE(verifier.scan_now());

  verifier.state().set_blocked(status(1, {{1, 2}}, {{1, 2}}));  // real change
  EXPECT_TRUE(verifier.scan_now());
}

TEST(EpochSkipTest, ChangeAfterSkipsIsScannedAndDetected) {
  Verifier verifier(manual_detection_config());
  verifier.state().set_blocked(status(1, {{1, 1}}, {{2, 0}}));
  EXPECT_TRUE(verifier.scan_now());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(verifier.scan_now());

  // Close the cycle: the next scan must run and report it.
  verifier.state().set_blocked(status(2, {{2, 1}}, {{1, 0}}));
  EXPECT_TRUE(verifier.scan_now());
  ASSERT_EQ(verifier.reported().size(), 1u);
  EXPECT_EQ(verifier.reported()[0].tasks, (std::vector<TaskId>{1, 2}));
}

TEST(EpochSkipTest, RegistryChangeAloneInvalidatesTheEpoch) {
  Verifier verifier(manual_detection_config());
  verifier.state().set_blocked(status(1, {{1, 1}}, {}));
  EXPECT_TRUE(verifier.scan_now());
  EXPECT_FALSE(verifier.scan_now());

  // A registration performed on behalf of the blocked task (X10 `clocked`,
  // PL `reg`) changes the analysis input without touching the store.
  verifier.registry().set_entry(1, 3, 0);
  EXPECT_TRUE(verifier.scan_now());
}

TEST(EpochSkipTest, CheckNowServesCachedResultWhileUnchanged) {
  Verifier verifier(manual_detection_config());
  verifier.state().set_blocked(status(1, {{1, 1}}, {{2, 0}}));
  verifier.state().set_blocked(status(2, {{2, 1}}, {{1, 0}}));

  CheckResult first = verifier.check_now();
  EXPECT_TRUE(first.deadlocked());
  for (int i = 0; i < 10; ++i) {
    CheckResult again = verifier.check_now();
    EXPECT_EQ(normalised(again), normalised(first));
  }
  Verifier::Stats stats = verifier.stats();
  EXPECT_EQ(stats.graphs_built, 1u);
  EXPECT_EQ(stats.checks, 11u);  // every check_now still counts as a check
}

TEST(EpochSkipTest, AvoidanceRecheckReusesTheGraphAcrossPolls) {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(config);

  BlockedStatus s1 = status(1, {{1, 1}}, {{1, 1}});
  verifier.before_block(s1);  // no cycle: allowed to block
  // Polling with the identical status must not rebuild the graph.
  Verifier::Stats before = verifier.stats();
  for (int i = 0; i < 20; ++i) verifier.recheck_blocked(s1);
  Verifier::Stats after = verifier.stats();
  EXPECT_EQ(after.graphs_built, before.graphs_built);
  EXPECT_EQ(after.checks, before.checks + 20);
}

}  // namespace
}  // namespace armus
