// Tests for the armus-kv networked slice store: wire protocol encoding
// (including the byte-level examples pinned by docs/WIRE_PROTOCOL.md),
// server request handling and error codes, RemoteStore round trips over
// real TCP, disconnect/reconnect with backoff, stale-version rejection,
// and Site/SharedStore behaviour across server outages.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <thread>

#include "core/checker.h"

#include "dist/site.h"
#include "fuzz/wire.h"
#include "net/config.h"
#include "net/kv_server.h"
#include "net/protocol.h"
#include "net/remote_store.h"
#include "net/socket_io.h"
#include "net/watch.h"

namespace armus::net {
namespace {

using namespace std::chrono_literals;
using dist::append_varint;
using dist::read_varint;

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

/// A RemoteStore config tuned for fast tests.
RemoteStore::Config client_config(std::uint16_t port) {
  RemoteStore::Config config;
  config.host = "127.0.0.1";
  config.port = port;
  config.connect_timeout = 200ms;
  config.backoff_initial = 5ms;
  config.backoff_max = 20ms;
  return config;
}

std::string hex(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
    out.push_back(' ');
  }
  if (!out.empty()) out.pop_back();
  return out;
}

// --- protocol ----------------------------------------------------------------

TEST(ProtocolTest, FramePrefixIsLittleEndianLength) {
  std::string framed = frame("abc");
  ASSERT_EQ(framed.size(), 7u);
  EXPECT_EQ(hex(framed), "03 00 00 00 61 62 63");
}

TEST(ProtocolTest, RequestHeaderBytes) {
  // docs/WIRE_PROTOCOL.md "HEARTBEAT request" example: proto=1, type=4.
  EXPECT_EQ(hex(request_header(MsgType::kHeartbeat)), "01 04");
}

TEST(ProtocolTest, DocumentedPutSliceExample) {
  // The byte-level PUT_SLICE example in docs/WIRE_PROTOCOL.md: site 2,
  // version 3, payload = encode_statuses of task 7 waiting on (phaser 1,
  // phase 1) while registered on (1,1) and (2,0).
  std::string payload =
      dist::encode_statuses({status(7, {{1, 1}}, {{1, 1}, {2, 0}})});
  EXPECT_EQ(hex(payload), "01 07 01 01 01 02 01 01 02 00");

  std::string body = request_header(MsgType::kPutSlice);
  append_varint(body, 2);
  append_varint(body, 3);
  append_bytes(body, payload);
  EXPECT_EQ(hex(body), "01 01 02 03 0a 01 07 01 01 01 02 01 01 02 00");

  std::string framed = frame(body);
  EXPECT_EQ(hex(framed.substr(0, 4)), "0f 00 00 00");
}

TEST(ProtocolTest, DocumentedDeltaFrameExample) {
  // docs/WIRE_PROTOCOL.md §1 "Delta frame" example: remove task 9.
  dist::SliceDelta delta;
  delta.removals = {9};
  EXPECT_EQ(hex(dist::encode_delta(delta)), "00 01 09");
}

TEST(ProtocolTest, DocumentedPutSliceDeltaExample) {
  // docs/WIRE_PROTOCOL.md §8 worked example: site 2, base 3, proposed 4,
  // upserting task 7's advanced status.
  dist::SliceDelta delta;
  delta.upserts = {status(7, {{1, 2}}, {{1, 2}, {2, 0}})};
  std::string encoded = dist::encode_delta(delta);
  EXPECT_EQ(hex(encoded), "01 07 01 01 02 02 01 02 02 00 00");

  std::string body = request_header(MsgType::kPutSliceDelta);
  append_varint(body, 2);  // site
  append_varint(body, 3);  // base
  append_varint(body, 4);  // proposed version
  append_bytes(body, encoded);
  EXPECT_EQ(hex(body), "01 06 02 03 04 0b 01 07 01 01 02 02 01 02 02 00 00");
  EXPECT_EQ(hex(frame(body).substr(0, 4)), "11 00 00 00");
}

TEST(ProtocolTest, DocumentedListSlicesSinceExample) {
  // docs/WIRE_PROTOCOL.md §7 worked example: on a store with boot
  // generation 7, site 1 publishes, then site 2 publishes the §1 payload;
  // a reader that saw store version 2 asks for everything since then and
  // receives only site 2's slice.
  dist::Store::Config backing_config;
  backing_config.generation = 7;
  KvServer server(KvServer::Config{},
                  std::make_shared<dist::Store>(backing_config));
  std::string put1 = request_header(MsgType::kPutSlice);
  append_varint(put1, 1);
  append_varint(put1, 1);
  append_bytes(put1, dist::encode_statuses({status(1, {{1, 1}}, {})}));
  ASSERT_EQ(server.handle_request(put1).substr(0, 1), std::string(1, '\0'));

  std::string put2 = request_header(MsgType::kPutSlice);
  append_varint(put2, 2);
  append_varint(put2, 1);
  append_bytes(put2,
               dist::encode_statuses({status(7, {{1, 1}}, {{1, 1}, {2, 0}})}));
  ASSERT_EQ(server.handle_request(put2).substr(0, 1), std::string(1, '\0'));

  std::string request = request_header(MsgType::kListSlicesSince);
  append_varint(request, 2);  // since = store version 2
  EXPECT_EQ(hex(request), "01 07 02");

  EXPECT_EQ(hex(server.handle_request(request)),
            "00 07 03 01 02 01 0a 01 07 01 01 01 02 01 01 02 00 02 01 02");
}

TEST(ProtocolTest, DocumentedInspectExample) {
  // docs/WIRE_PROTOCOL.md §10 worked example: a store booted with
  // generation 7 and a pinned clock; site 2 publishes the §1 payload and
  // 250 ms pass before the INSPECT arrives.
  auto now = std::make_shared<std::chrono::steady_clock::time_point>();
  dist::Store::Config backing_config;
  backing_config.generation = 7;
  backing_config.clock = [now] { return *now; };
  KvServer server(KvServer::Config{},
                  std::make_shared<dist::Store>(backing_config));
  std::string payload =
      dist::encode_statuses({status(7, {{1, 1}}, {{1, 1}, {2, 0}})});
  server.backing()->put_slice(2, payload);
  *now += 250ms;

  std::string request = request_header(MsgType::kInspect);
  EXPECT_EQ(hex(request), "01 08");

  // OK, generation 7, store version 2 (boots at 1, one write), 0
  // connections (handle_request called directly), 1 request (this
  // INSPECT), 0 errors, role 0 (primary), empty primary address, lag
  // 0/0, resync age 0, one row: site 2 version 1, 1 blocked task,
  // age 250 ms (fa 01), 10 payload bytes.
  std::string response = server.handle_request(request);
  EXPECT_EQ(hex(response),
            "00 07 02 00 01 00 00 00 00 00 00 01 02 01 01 fa 01 0a");

  std::size_t offset = 0;
  ASSERT_EQ(read_varint(response, &offset),
            static_cast<std::uint64_t>(WireStatus::kOk));
  InspectInfo info = read_inspect(response, &offset);
  expect_end(response, offset);
  EXPECT_EQ(info.generation, 7u);
  EXPECT_EQ(info.store_version, 2u);
  EXPECT_EQ(info.requests, 1u);
  ASSERT_EQ(info.sites.size(), 1u);
  EXPECT_EQ(info.sites[0].site, 2u);
  EXPECT_EQ(info.sites[0].version, 1u);
  EXPECT_EQ(info.sites[0].blocked, 1u);
  EXPECT_EQ(info.sites[0].age_ms, 250u);
  EXPECT_EQ(info.sites[0].payload_bytes, payload.size());
}

TEST(ProtocolTest, SliceRoundTrip) {
  dist::Slice in;
  in.site = 300;
  in.version = 41;
  in.payload = "payload-bytes";
  std::string out;
  append_slice(out, in);
  std::size_t offset = 0;
  dist::Slice decoded = read_slice(out, &offset);
  expect_end(out, offset);
  EXPECT_EQ(decoded.site, in.site);
  EXPECT_EQ(decoded.version, in.version);
  EXPECT_EQ(decoded.payload, in.payload);
}

TEST(ProtocolTest, ReadBytesRejectsOverlongLength) {
  std::string out;
  append_bytes(out, "xy");
  out.resize(out.size() - 1);  // declared 2 bytes, only 1 present
  std::size_t offset = 0;
  EXPECT_THROW((void)read_bytes(out, &offset), dist::CodecError);
}

// --- server request handling (no sockets) ------------------------------------

std::uint64_t response_status(const std::string& response) {
  std::size_t offset = 0;
  return read_varint(response, &offset);
}

TEST(KvServerTest, HandlesPutListClearDirectly) {
  KvServer server;

  std::string put = request_header(MsgType::kPutSlice);
  append_varint(put, 1);  // site
  append_varint(put, 1);  // version
  append_bytes(put, dist::encode_statuses({status(1, {{1, 1}}, {})}));
  EXPECT_EQ(response_status(server.handle_request(put)),
            static_cast<std::uint64_t>(WireStatus::kOk));

  std::string list = request_header(MsgType::kListSlices);
  std::string response = server.handle_request(list);
  std::size_t offset = 0;
  ASSERT_EQ(read_varint(response, &offset),
            static_cast<std::uint64_t>(WireStatus::kOk));
  ASSERT_EQ(read_varint(response, &offset), 1u);  // one slice
  dist::Slice slice = read_slice(response, &offset);
  expect_end(response, offset);
  EXPECT_EQ(slice.site, 1u);
  EXPECT_EQ(slice.version, 1u);

  std::string clear = request_header(MsgType::kClear);
  append_varint(clear, 1);
  EXPECT_EQ(response_status(server.handle_request(clear)),
            static_cast<std::uint64_t>(WireStatus::kOk));
  EXPECT_TRUE(server.backing()->snapshot().empty());
}

TEST(KvServerTest, RejectsStaleVersionWithCurrent) {
  KvServer server;
  server.backing()->put_slice(4, "newer");  // version 1
  server.backing()->put_slice(4, "newest"); // version 2

  std::string put = request_header(MsgType::kPutSlice);
  append_varint(put, 4);
  append_varint(put, 2);  // not newer than current 2
  append_bytes(put, "stale");
  std::string response = server.handle_request(put);
  std::size_t offset = 0;
  EXPECT_EQ(read_varint(response, &offset),
            static_cast<std::uint64_t>(WireStatus::kStaleVersion));
  EXPECT_EQ(read_varint(response, &offset), 2u);  // current version
  auto slice = server.backing()->get_slice(4);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->payload, "newest");  // rejected write left no trace
}

TEST(KvServerTest, ErrorCodes) {
  KvServer server;

  std::string bad_version;
  append_varint(bad_version, 99);  // unsupported protocol revision
  append_varint(bad_version, static_cast<std::uint64_t>(MsgType::kHeartbeat));
  EXPECT_EQ(response_status(server.handle_request(bad_version)),
            static_cast<std::uint64_t>(WireStatus::kBadVersion));

  std::string unknown;
  append_varint(unknown, kProtocolVersion);
  append_varint(unknown, 42);  // no such message type
  EXPECT_EQ(response_status(server.handle_request(unknown)),
            static_cast<std::uint64_t>(WireStatus::kUnknownType));

  std::string truncated = request_header(MsgType::kGetSlice);  // missing site
  EXPECT_EQ(response_status(server.handle_request(truncated)),
            static_cast<std::uint64_t>(WireStatus::kBadRequest));

  // Two trailing bytes: the first parses as a request-id trailer (§14),
  // so it takes a *second* stray byte to be trailing garbage now.
  std::string trailing = request_header(MsgType::kHeartbeat);
  trailing += "xy";
  EXPECT_EQ(response_status(server.handle_request(trailing)),
            static_cast<std::uint64_t>(WireStatus::kBadRequest));

  std::string absent = request_header(MsgType::kGetSlice);
  append_varint(absent, 123);
  EXPECT_EQ(response_status(server.handle_request(absent)),
            static_cast<std::uint64_t>(WireStatus::kNotFound));

  server.backing()->set_available(false);
  std::string list = request_header(MsgType::kListSlices);
  EXPECT_EQ(response_status(server.handle_request(list)),
            static_cast<std::uint64_t>(WireStatus::kUnavailable));
  EXPECT_GE(server.stats().errors, 5u);
}

TEST(KvServerTest, AppliesDeltasAndRejectsBadBases) {
  KvServer server;
  std::string put = request_header(MsgType::kPutSlice);
  append_varint(put, 2);
  append_varint(put, 3);  // proposed slice version 3
  append_bytes(put,
               dist::encode_statuses({status(7, {{1, 1}}, {{1, 1}, {2, 0}})}));
  ASSERT_EQ(response_status(server.handle_request(put)),
            static_cast<std::uint64_t>(WireStatus::kOk));

  dist::SliceDelta delta;
  delta.upserts = {status(7, {{1, 2}}, {{1, 2}, {2, 0}})};

  std::string apply = request_header(MsgType::kPutSliceDelta);
  append_varint(apply, 2);
  append_varint(apply, 3);  // base = stored version
  append_varint(apply, 4);  // proposed
  append_bytes(apply, dist::encode_delta(delta));
  EXPECT_EQ(hex(server.handle_request(apply)), "00 04");  // docs §8

  auto slice = server.backing()->get_slice(2);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->version, 4u);
  EXPECT_EQ(dist::decode_statuses(slice->payload),
            (std::vector<BlockedStatus>{status(7, {{1, 2}}, {{1, 2}, {2, 0}})}));

  // The same request again: the slice moved to version 4, so base 3 no
  // longer matches — BASE_MISMATCH carrying the current version.
  std::string response = server.handle_request(apply);
  std::size_t offset = 0;
  EXPECT_EQ(read_varint(response, &offset),
            static_cast<std::uint64_t>(WireStatus::kBaseMismatch));
  EXPECT_EQ(read_varint(response, &offset), 4u);

  // Matching base but a non-newer proposed version: STALE_VERSION.
  std::string stale = request_header(MsgType::kPutSliceDelta);
  append_varint(stale, 2);
  append_varint(stale, 4);  // base matches
  append_varint(stale, 4);  // proposed not newer
  append_bytes(stale, dist::encode_delta(delta));
  response = server.handle_request(stale);
  offset = 0;
  EXPECT_EQ(read_varint(response, &offset),
            static_cast<std::uint64_t>(WireStatus::kStaleVersion));
  EXPECT_EQ(read_varint(response, &offset), 4u);

  // A malformed delta frame is a bad request, not a crash.
  std::string malformed = request_header(MsgType::kPutSliceDelta);
  append_varint(malformed, 2);
  append_varint(malformed, 4);
  append_varint(malformed, 5);
  append_bytes(malformed, "\xff\xff\xff");
  EXPECT_EQ(response_status(server.handle_request(malformed)),
            static_cast<std::uint64_t>(WireStatus::kBadRequest));
}

TEST(KvServerTest, InspectDuringOutageIsUnavailable) {
  KvServer server;
  server.backing()->set_available(false);
  EXPECT_EQ(response_status(
                server.handle_request(request_header(MsgType::kInspect))),
            static_cast<std::uint64_t>(WireStatus::kUnavailable));
}

// --- RemoteStore over real TCP ----------------------------------------------

TEST(RemoteStoreTest, InspectOverTcp) {
  KvServer server;
  server.start();
  RemoteStore client(client_config(server.port()));

  client.put_slice(1, dist::encode_statuses({status(1, {{1, 1}}, {})}));
  client.put_slice(2, dist::encode_statuses(
                          {status(2, {{2, 1}}, {}), status(3, {{2, 1}}, {})}));
  server.backing()->put_slice(9, "not-a-slice");  // corrupt publisher

  InspectInfo info = client.inspect();
  EXPECT_EQ(info.generation, server.backing()->generation());
  EXPECT_EQ(info.store_version, server.backing()->version());
  EXPECT_EQ(info.connections, 1u);
  EXPECT_GE(info.requests, 3u);  // two puts + this INSPECT (+ handshake)
  EXPECT_EQ(info.errors, 0u);
  ASSERT_EQ(info.sites.size(), 3u);
  EXPECT_EQ(info.sites[0].site, 1u);
  EXPECT_EQ(info.sites[0].blocked, 1u);
  EXPECT_EQ(info.sites[1].site, 2u);
  EXPECT_EQ(info.sites[1].blocked, 2u);
  // An undecodable payload still gets a row — size and version are facts,
  // the blocked count degrades to zero rather than poisoning the table.
  EXPECT_EQ(info.sites[2].site, 9u);
  EXPECT_EQ(info.sites[2].blocked, 0u);
  EXPECT_EQ(info.sites[2].payload_bytes, 11u);

  server.backing()->set_available(false);
  EXPECT_THROW((void)client.inspect(), dist::StoreUnavailableError);
}

TEST(RemoteStoreTest, RoundTripsSliceOperations) {
  KvServer server;
  server.start();
  RemoteStore client(client_config(server.port()));

  EXPECT_TRUE(client.heartbeat());
  EXPECT_EQ(client.put_slice(1, "one"), 1u);
  EXPECT_EQ(client.put_slice(1, "one-again"), 2u);
  EXPECT_EQ(client.put_slice(2, "two"), 1u);

  auto snapshot = client.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].site, 1u);
  EXPECT_EQ(snapshot[0].payload, "one-again");
  EXPECT_EQ(snapshot[0].version, 2u);
  EXPECT_EQ(snapshot[1].payload, "two");

  auto one = client.get_slice(1);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->payload, "one-again");
  EXPECT_FALSE(client.get_slice(9).has_value());

  client.remove_slice(1);
  EXPECT_EQ(client.snapshot().size(), 1u);
  EXPECT_EQ(client.stats().connects, 1u);  // one connection served it all
}

TEST(RemoteStoreTest, SecondWriterOfSameSiteResequencesPastStaleVersion) {
  KvServer server;
  server.start();
  RemoteStore first(client_config(server.port()));
  RemoteStore second(client_config(server.port()));

  EXPECT_EQ(first.put_slice(7, "a"), 1u);
  EXPECT_EQ(first.put_slice(7, "b"), 2u);
  // `second` has never written site 7, so it proposes version 1 — stale.
  // It must jump past the server's version and win on the retry.
  EXPECT_EQ(second.put_slice(7, "usurper"), 3u);
  EXPECT_EQ(second.stats().stale_retries, 1u);
  auto slice = server.backing()->get_slice(7);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->payload, "usurper");
}

TEST(RemoteStoreTest, NarrowedReadsOverTcp) {
  KvServer server;
  server.start();
  RemoteStore client(client_config(server.port()));

  client.put_slice(1, dist::encode_statuses({status(1, {{1, 1}}, {})}));
  dist::DeltaSnapshot all = client.snapshot_since(0);
  EXPECT_NE(all.version, 0u);
  ASSERT_EQ(all.changed.size(), 1u);
  EXPECT_EQ(all.live_sites, (std::vector<dist::SiteId>{1}));

  // Unchanged store: the response carries no slice payloads at all.
  dist::DeltaSnapshot none = client.snapshot_since(all.version);
  EXPECT_EQ(none.version, all.version);
  EXPECT_TRUE(none.changed.empty());
  EXPECT_EQ(none.live_sites, (std::vector<dist::SiteId>{1}));

  client.put_slice(2, dist::encode_statuses({status(2, {{2, 1}}, {})}));
  dist::DeltaSnapshot one = client.snapshot_since(all.version);
  EXPECT_GT(one.version, all.version);
  ASSERT_EQ(one.changed.size(), 1u);
  EXPECT_EQ(one.changed[0].site, 2u);
  EXPECT_EQ(one.live_sites, (std::vector<dist::SiteId>{1, 2}));
}

TEST(RemoteStoreTest, DeltaPutsOverTcp) {
  KvServer server;
  server.start();
  RemoteStore client(client_config(server.port()));

  std::vector<BlockedStatus> base{
      status(1, {{1, 1}}, {{1, 1}}),
      status(2, {{2, 1}}, {{2, 1}}),
  };
  std::uint64_t v1 = client.put_slice(4, dist::encode_statuses(base));

  dist::SliceDelta delta;
  delta.upserts = {status(2, {{2, 2}}, {{2, 2}})};
  delta.removals = {1};
  std::uint64_t v2 = client.put_slice_delta(4, v1, dist::encode_delta(delta));
  EXPECT_GT(v2, v1);

  auto slice = client.get_slice(4);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(dist::decode_statuses(slice->payload),
            (std::vector<BlockedStatus>{status(2, {{2, 2}}, {{2, 2}})}));

  // A stale base surfaces as the typed mismatch error, so dist::Site can
  // fall back to a full publish.
  EXPECT_THROW(client.put_slice_delta(4, v1, dist::encode_delta(delta)),
               dist::SliceBaseMismatchError);
}

TEST(NetSharedStoreTest, EpochSkipsVerifierScansAcrossTheWire) {
  KvServer server;
  server.start();
  auto remote = std::make_shared<RemoteStore>(client_config(server.port()));
  auto shared = std::make_shared<dist::SharedStore>(remote, 0);

  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;
  config.store = shared;
  Verifier verifier(config);

  verifier.state().set_blocked(status(1, {{1, 1}}, {{2, 0}}));
  EXPECT_TRUE(verifier.scan_now());
  // Nothing changed anywhere in the cluster: every further scan is one
  // payload-free LIST_SLICES_SINCE round trip and no graph work.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(verifier.scan_now());
  EXPECT_EQ(verifier.stats().scans_skipped, 5u);
  EXPECT_EQ(verifier.stats().graphs_built, 1u);

  // Another process publishes the other half of a cycle: the epoch moves,
  // the next scan runs and detects it.
  RemoteStore other(client_config(server.port()));
  other.put_slice(5, dist::encode_statuses({status(50, {{2, 1}}, {{1, 0}})}));
  EXPECT_TRUE(verifier.scan_now());
  ASSERT_EQ(verifier.reported().size(), 1u);
  EXPECT_EQ(verifier.reported()[0].tasks, (std::vector<TaskId>{1, 50}));
}

TEST(RemoteStoreTest, DisconnectBacksOffThenReconnects) {
  auto backing = std::make_shared<dist::Store>();
  KvServer::Config server_config;
  auto server = std::make_unique<KvServer>(server_config, backing);
  server->start();
  std::uint16_t port = server->port();

  RemoteStore client(client_config(port));
  EXPECT_EQ(client.put_slice(1, "before-outage"), 1u);

  server->stop();
  EXPECT_THROW(client.put_slice(1, "during-outage"),
               dist::StoreUnavailableError);
  // Inside the backoff window operations fail fast, without the network.
  EXPECT_THROW(client.put_slice(1, "still-down"),
               dist::StoreUnavailableError);
  EXPECT_GE(client.stats().failures, 1u);

  // Same port, same backing: the server came back with its data intact.
  server_config.port = port;
  server = std::make_unique<KvServer>(server_config, backing);
  server->start();
  std::this_thread::sleep_for(50ms);  // let the backoff window expire

  EXPECT_EQ(client.put_slice(1, "after-recovery"), 2u);
  EXPECT_GE(client.stats().connects, 2u);
  auto slice = backing->get_slice(1);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->payload, "after-recovery");
}

// --- Site / SharedStore over armus-kv ----------------------------------------

void plant_cross_site_cycle(dist::Site& a, dist::Site& b) {
  a.verifier().state().set_blocked(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  b.verifier().state().set_blocked(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
}

TEST(NetSiteTest, DetectsCrossSiteDeadlockThroughTcp) {
  KvServer server;
  server.start();

  dist::Site::Config ca, cb;
  ca.id = 0;
  cb.id = 1;
  dist::Site a(ca, std::make_shared<RemoteStore>(client_config(server.port())));
  dist::Site b(cb, std::make_shared<RemoteStore>(client_config(server.port())));
  plant_cross_site_cycle(a, b);

  ASSERT_TRUE(a.publish_now());
  ASSERT_TRUE(b.publish_now());
  ASSERT_TRUE(a.check_now());
  ASSERT_TRUE(b.check_now());

  ASSERT_EQ(a.reported().size(), 1u);
  ASSERT_EQ(b.reported().size(), 1u);
  EXPECT_EQ(a.reported()[0].tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(b.reported()[0].tasks, (std::vector<TaskId>{1, 2}));
}

TEST(NetSiteTest, AbsorbsTcpOutageAndPublishesAfterRecovery) {
  auto backing = std::make_shared<dist::Store>();
  KvServer::Config server_config;
  auto server = std::make_unique<KvServer>(server_config, backing);
  server->start();
  std::uint16_t port = server->port();

  dist::Site::Config config;
  config.id = 3;
  dist::Site site(config, std::make_shared<RemoteStore>(client_config(port)));
  site.verifier().state().set_blocked(status(30, {{5, 1}}, {{5, 1}}));
  ASSERT_TRUE(site.publish_now());

  server->stop();
  // An unchanged slice skips the store write entirely, so the publisher
  // does not even notice the outage; the checker, which must contact the
  // store, absorbs it (not thrown) and flags the store as suspect.
  EXPECT_TRUE(site.publish_now());
  EXPECT_EQ(site.stats().publishes_skipped, 1u);
  EXPECT_FALSE(site.check_now());
  EXPECT_GE(site.stats().store_failures, 1u);

  // The site keeps accumulating state during the outage...
  site.verifier().state().set_blocked(status(31, {{6, 1}}, {{6, 1}}));

  server_config.port = port;
  server = std::make_unique<KvServer>(server_config, backing);
  server->start();
  std::this_thread::sleep_for(50ms);

  // ...and the first successful publish carries the *full* slice.
  ASSERT_TRUE(site.publish_now());
  auto slice = backing->get_slice(3);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(dist::decode_statuses(slice->payload).size(), 2u);
  ASSERT_TRUE(site.check_now());
  EXPECT_EQ(site.stats().publishes, 2u);
}

TEST(NetSiteTest, ServerRestartWithCollidingSliceVersionsIsReDecoded) {
  // The nasty restart case: the replacement server's backing holds a slice
  // for the same site at the *same* per-slice version but with different
  // content. The boot generation in LIST_SLICES_SINCE tells the checker
  // its cache (keyed by slice version) is void, so it re-decodes and sees
  // the new content — here, a deadlock the old content did not have.
  auto backing1 = std::make_shared<dist::Store>();
  backing1->put_slice(9, dist::encode_statuses(
                             {status(90, {{9, 1}}, {{9, 1}})}));  // no cycle

  KvServer::Config server_config;
  auto server = std::make_unique<KvServer>(server_config, backing1);
  server->start();
  std::uint16_t port = server->port();

  dist::Site::Config config;
  config.id = 0;
  dist::Site site(config, std::make_shared<RemoteStore>(client_config(port)));
  ASSERT_TRUE(site.check_now());  // caches site 9's slice (version 1)
  EXPECT_TRUE(site.reported().empty());

  server->stop();

  auto backing2 = std::make_shared<dist::Store>();  // fresh lifetime
  backing2->put_slice(9, dist::encode_statuses({
                             status(91, {{1, 1}}, {{2, 0}}),
                             status(92, {{2, 1}}, {{1, 0}}),
                         }));  // same site, same slice version 1, a cycle

  server_config.port = port;
  server = std::make_unique<KvServer>(server_config, backing2);
  server->start();

  // Retry through the client's reconnect backoff.
  bool checked = false;
  for (int i = 0; i < 200 && !checked; ++i) {
    checked = site.check_now();
    if (!checked) std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(checked);
  ASSERT_EQ(site.reported().size(), 1u);
  EXPECT_EQ(site.reported()[0].tasks, (std::vector<TaskId>{91, 92}));
}

TEST(NetSiteTest, PeriodicLoopsDetectThroughServerRestart) {
  auto backing = std::make_shared<dist::Store>();
  KvServer::Config server_config;
  auto server = std::make_unique<KvServer>(server_config, backing);
  server->start();
  std::uint16_t port = server->port();

  std::atomic<int> detections{0};
  dist::Site::Config ca, cb;
  ca.id = 0;
  ca.publish_period = 5ms;
  ca.check_period = 5ms;
  ca.on_deadlock = [&](const DeadlockReport&) { ++detections; };
  cb = ca;
  cb.id = 1;
  cb.on_deadlock = nullptr;
  dist::Site a(ca, std::make_shared<RemoteStore>(client_config(port)));
  dist::Site b(cb, std::make_shared<RemoteStore>(client_config(port)));

  // Kill the server before the sites ever publish: every early round
  // fails, and the sites must ride it out.
  server->stop();
  plant_cross_site_cycle(a, b);
  a.start();
  b.start();
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(detections.load(), 0);
  EXPECT_GE(a.stats().store_failures, 1u);

  server_config.port = port;
  server = std::make_unique<KvServer>(server_config, backing);
  server->start();
  for (int i = 0; i < 600 && detections.load() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  a.stop();
  b.stop();
  EXPECT_GE(detections.load(), 1);
  EXPECT_EQ(a.stats().deadlocks_found, 1u);
}

TEST(NetSharedStoreTest, VerifierOverTcpSeesRemoteTasks) {
  KvServer server;
  server.start();

  auto store_a = std::make_shared<dist::SharedStore>(
      std::make_shared<RemoteStore>(client_config(server.port())), 0);
  auto store_b = std::make_shared<dist::SharedStore>(
      std::make_shared<RemoteStore>(client_config(server.port())), 1);

  store_a->set_blocked(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  store_b->set_blocked(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));

  // Either window sees the global merged state...
  EXPECT_EQ(store_a->blocked_count(), 2u);
  EXPECT_EQ(store_b->snapshot().size(), 2u);

  // ...and a checker over one of them closes the cross-process cycle.
  CheckResult result = check_deadlocks(store_a->snapshot(), GraphModel::kAuto);
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.reports[0].tasks, (std::vector<TaskId>{1, 2}));
}

TEST(NetSharedStoreTest, RepeatedReadsDoNotRedecodeUnchangedSlices) {
  KvServer server;
  server.start();
  auto store = std::make_shared<dist::SharedStore>(
      std::make_shared<RemoteStore>(client_config(server.port())), 0);
  RemoteStore other(client_config(server.port()));
  other.put_slice(1, dist::encode_statuses({status(10, {{1, 1}}, {})}));

  store->set_blocked(status(1, {{2, 1}}, {{2, 1}}));
  (void)store->blocked_count();
  std::uint64_t decodes_after_first = store->decode_count();
  EXPECT_GE(decodes_after_first, 2u);  // both slices decoded once

  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(store->blocked_count(), 2u);
    (void)store->snapshot();
  }
  // 22 further reads, zero further decodes: O(changed slices).
  EXPECT_EQ(store->decode_count(), decodes_after_first);

  // One slice changes → exactly one further decode.
  other.put_slice(1, dist::encode_statuses({status(10, {{1, 2}}, {})}));
  EXPECT_EQ(store->blocked_count(), 2u);
  EXPECT_EQ(store->decode_count(), decodes_after_first + 1);
}

// --- config / env ------------------------------------------------------------

TEST(NetConfigTest, ParsesTcpEndpoints) {
  Endpoint endpoint = parse_tcp_endpoint("tcp://10.1.2.3:6379");
  EXPECT_EQ(endpoint.host, "10.1.2.3");
  EXPECT_EQ(endpoint.port, 6379);
  EXPECT_EQ(parse_tcp_endpoint("tcp://localhost:1").port, 1);

  EXPECT_THROW(parse_tcp_endpoint("redis://x:1"), std::invalid_argument);
  EXPECT_THROW(parse_tcp_endpoint("tcp://nohost"), std::invalid_argument);
  EXPECT_THROW(parse_tcp_endpoint("tcp://:123"), std::invalid_argument);
  EXPECT_THROW(parse_tcp_endpoint("tcp://h:"), std::invalid_argument);
  EXPECT_THROW(parse_tcp_endpoint("tcp://h:0"), std::invalid_argument);
  EXPECT_THROW(parse_tcp_endpoint("tcp://h:99999"), std::invalid_argument);
  EXPECT_THROW(parse_tcp_endpoint("tcp://h:12x"), std::invalid_argument);
}

/// Restores an env var on scope exit.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value) previous_ = value;
  }
  ~EnvGuard() {
    if (previous_) {
      ::setenv(name_, previous_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

TEST(NetConfigTest, EnvSelectsRemoteBackend) {
  KvServer server;
  server.start();
  EnvGuard store_guard("ARMUS_STORE");
  EnvGuard site_guard("ARMUS_SITE_ID");
  EnvGuard scanner_guard("ARMUS_SCANNER");
  std::string url = "tcp://127.0.0.1:" + std::to_string(server.port());
  ::setenv("ARMUS_STORE", url.c_str(), 1);
  ::setenv("ARMUS_SITE_ID", "5", 1);
  ::setenv("ARMUS_SCANNER", "0", 1);

  VerifierConfig config = verifier_config_from_env();
  ASSERT_NE(config.store, nullptr);
  auto shared = std::dynamic_pointer_cast<dist::SharedStore>(config.store);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->site(), 5u);

  // A Verifier built from the env config publishes straight into armus-kv.
  Verifier verifier(config);
  verifier.state().set_blocked(status(50, {{9, 1}}, {{9, 1}}));
  auto slice = server.backing()->get_slice(5);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(dist::decode_statuses(slice->payload).size(), 1u);
}

TEST(NetConfigTest, UnsetEnvMeansLocalStore) {
  EnvGuard store_guard("ARMUS_STORE");
  ::unsetenv("ARMUS_STORE");
  EXPECT_EQ(slice_store_from_env(), nullptr);
}

TEST(NetConfigTest, MalformedEnvThrows) {
  EnvGuard store_guard("ARMUS_STORE");
  ::setenv("ARMUS_STORE", "tcp://missing-port", 1);
  EXPECT_THROW(slice_store_from_env(), std::invalid_argument);
}

// --- STATS -------------------------------------------------------------------

TEST(KvServerTest, DocumentedStatsExample) {
  // The byte-pinned example in docs/WIRE_PROTOCOL.md §11: a fresh server
  // over a generation-7 store answers STATS with OK + a length-delimited
  // registry snapshot whose only non-zero counters are the generation,
  // the store's initial change version, and the request being answered.
  dist::Store::Config store_config;
  store_config.generation = 7;
  KvServer server(KvServer::Config{},
                  std::make_shared<dist::Store>(store_config));

  std::string response = server.handle_request(request_header(MsgType::kStats));
  std::size_t offset = 0;
  ASSERT_EQ(read_varint(response, &offset),
            static_cast<std::uint64_t>(WireStatus::kOk));
  std::string_view json = read_bytes(response, &offset);
  expect_end(response, offset);
  EXPECT_EQ(json,
            "{\"schema\":\"armus.obs.registry.v1\",\"counters\":{"
            "\"kv.auth_failures\":0,\"kv.connections\":0,"
            "\"kv.dropped_backpressure\":0,\"kv.dropped_idle\":0,"
            "\"kv.dropped_protocol\":0,\"kv.errors\":0,\"kv.generation\":7,"
            "\"kv.not_primary\":0,\"kv.replication_frames\":0,"
            "\"kv.replication_lag_ms\":0,\"kv.replication_lag_versions\":0,"
            "\"kv.replication_resyncs\":0,\"kv.requests\":1,\"kv.role\":0,"
            "\"kv.slices\":0,\"kv.store_version\":1,\"kv.watch_dropped\":0},"
            "\"gauges\":{},\"histograms\":{}}");
}

TEST(RemoteStoreTest, StatsOverTcp) {
  KvServer server;
  server.start();
  RemoteStore client(client_config(server.port()));

  client.put_slice(3, "payload");
  std::string json = client.stats_json();
  EXPECT_NE(json.find("\"schema\":\"armus.obs.registry.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kv.slices\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kv.errors\":0"), std::string::npos);

  server.stop();
  EXPECT_THROW((void)client.stats_json(), dist::StoreUnavailableError);
}

// --- AUTH --------------------------------------------------------------------

KvServer::Config auth_server_config(const std::string& token) {
  KvServer::Config config;
  config.auth_token = token;
  return config;
}

/// One framed request/response exchange on an already-open socket.
std::string rpc(int fd, const std::string& body) {
  EXPECT_TRUE(io::write_all(fd, frame(body)));
  std::optional<std::string> response = io::read_frame(fd, kDefaultMaxFrame);
  EXPECT_TRUE(response.has_value());
  return response.value_or("");
}

TEST(KvServerTest, AuthGatesMutatingOpsPerConnection) {
  KvServer server(auth_server_config("sesame"));
  server.start();
  int fd = io::connect_to("127.0.0.1", server.port(), 500);
  ASSERT_GE(fd, 0);
  io::set_io_timeout(fd, 2000);

  // Mutating before AUTH: UNAUTHORIZED, and the connection survives.
  std::string put = request_header(MsgType::kPutSlice);
  append_varint(put, 1);
  append_varint(put, 1);
  append_bytes(put, "payload");
  EXPECT_EQ(response_status(rpc(fd, put)),
            static_cast<std::uint64_t>(WireStatus::kUnauthorized));

  // Reads, heartbeats, and introspection stay open to everyone.
  EXPECT_EQ(response_status(rpc(fd, request_header(MsgType::kHeartbeat))),
            static_cast<std::uint64_t>(WireStatus::kOk));
  EXPECT_EQ(response_status(rpc(fd, request_header(MsgType::kListSlices))),
            static_cast<std::uint64_t>(WireStatus::kOk));
  EXPECT_EQ(response_status(rpc(fd, request_header(MsgType::kInspect))),
            static_cast<std::uint64_t>(WireStatus::kOk));

  // A wrong token is rejected and does not authenticate.
  std::string bad_auth = request_header(MsgType::kAuth);
  append_bytes(bad_auth, "open");
  EXPECT_EQ(response_status(rpc(fd, bad_auth)),
            static_cast<std::uint64_t>(WireStatus::kUnauthorized));
  EXPECT_EQ(response_status(rpc(fd, put)),
            static_cast<std::uint64_t>(WireStatus::kUnauthorized));

  // The right token flips the connection; the same PUT now lands.
  std::string auth = request_header(MsgType::kAuth);
  append_bytes(auth, "sesame");
  EXPECT_EQ(response_status(rpc(fd, auth)),
            static_cast<std::uint64_t>(WireStatus::kOk));
  EXPECT_EQ(response_status(rpc(fd, put)),
            static_cast<std::uint64_t>(WireStatus::kOk));
  ASSERT_TRUE(server.backing()->get_slice(1).has_value());

  // AUTH is per connection: a fresh socket starts unauthenticated.
  int fd2 = io::connect_to("127.0.0.1", server.port(), 500);
  ASSERT_GE(fd2, 0);
  io::set_io_timeout(fd2, 2000);
  std::string clear = request_header(MsgType::kClear);
  append_varint(clear, 1);
  EXPECT_EQ(response_status(rpc(fd2, clear)),
            static_cast<std::uint64_t>(WireStatus::kUnauthorized));
  EXPECT_TRUE(server.backing()->get_slice(1).has_value());

  io::close_fd(fd);
  io::close_fd(fd2);
  EXPECT_GE(server.stats().auth_failures, 4u);
}

TEST(RemoteStoreTest, AuthTokenEndToEnd) {
  KvServer server(auth_server_config("sesame"));
  server.start();

  // A token-configured client AUTHs on connect and publishes freely.
  RemoteStore::Config with_token = client_config(server.port());
  with_token.auth_token = "sesame";
  RemoteStore good(with_token);
  EXPECT_EQ(good.put_slice(2, "payload"), 1u);
  EXPECT_EQ(good.stats().connects, 1u);

  // A tokenless client can read but not write.
  RemoteStore anonymous(client_config(server.port()));
  EXPECT_EQ(anonymous.snapshot().size(), 1u);
  EXPECT_THROW(anonymous.put_slice(3, "nope"), dist::StoreUnavailableError);

  // A wrong token fails the connect itself.
  RemoteStore::Config wrong = client_config(server.port());
  wrong.auth_token = "open";
  RemoteStore bad(wrong);
  EXPECT_THROW(bad.put_slice(3, "nope"), dist::StoreUnavailableError);
  EXPECT_EQ(bad.stats().connects, 0u);
}

TEST(RemoteStoreTest, TokenClientAgainstTokenlessServerIsNoOp) {
  // Interop: an unauthenticated server accepts AUTH as a no-op, so one
  // client config works against both deployments.
  KvServer server;
  server.start();
  RemoteStore::Config config = client_config(server.port());
  config.auth_token = "sesame";
  RemoteStore client(config);
  EXPECT_EQ(client.put_slice(1, "payload"), 1u);
  EXPECT_EQ(client.stats().connects, 1u);
}

// --- event loop --------------------------------------------------------------

TEST(KvServerTest, PipelinedRequestsAnswerInOrder) {
  KvServer server;
  server.start();
  int fd = io::connect_to("127.0.0.1", server.port(), 500);
  ASSERT_GE(fd, 0);
  io::set_io_timeout(fd, 2000);

  // Three PUTs for the same site with ascending versions, one write_all:
  // in-order handling is observable in the returned versions (any
  // reordering would draw a STALE_VERSION).
  std::string burst;
  for (std::uint64_t version = 1; version <= 3; ++version) {
    std::string put = request_header(MsgType::kPutSlice);
    append_varint(put, 6);
    append_varint(put, version);
    append_bytes(put, "v" + std::to_string(version));
    burst += frame(put);
  }
  burst += frame(request_header(MsgType::kHeartbeat));
  ASSERT_TRUE(io::write_all(fd, burst));

  for (std::uint64_t version = 1; version <= 3; ++version) {
    std::optional<std::string> response = io::read_frame(fd, kDefaultMaxFrame);
    ASSERT_TRUE(response.has_value());
    std::size_t offset = 0;
    ASSERT_EQ(read_varint(*response, &offset),
              static_cast<std::uint64_t>(WireStatus::kOk));
    EXPECT_EQ(read_varint(*response, &offset), version);
  }
  std::optional<std::string> last = io::read_frame(fd, kDefaultMaxFrame);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(response_status(*last),
            static_cast<std::uint64_t>(WireStatus::kOk));
  io::close_fd(fd);
}

TEST(KvServerTest, FrameArrivingOneByteAtATimeIsReassembled) {
  KvServer server;
  server.start();
  int fd = io::connect_to("127.0.0.1", server.port(), 500);
  ASSERT_GE(fd, 0);
  io::set_io_timeout(fd, 2000);

  std::string put = request_header(MsgType::kPutSlice);
  append_varint(put, 9);
  append_varint(put, 1);
  append_bytes(put, "drip-fed");
  std::string framed = frame(put);
  for (char byte : framed) {
    ASSERT_TRUE(io::write_all(fd, std::string_view(&byte, 1)));
  }
  std::optional<std::string> response = io::read_frame(fd, kDefaultMaxFrame);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_status(*response),
            static_cast<std::uint64_t>(WireStatus::kOk));
  auto slice = server.backing()->get_slice(9);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->payload, "drip-fed");
  io::close_fd(fd);
}

TEST(KvServerTest, IdleConnectionsAreSwept) {
  KvServer::Config config;
  config.idle_timeout = 100ms;
  KvServer server(config);
  server.start();
  int fd = io::connect_to("127.0.0.1", server.port(), 500);
  ASSERT_GE(fd, 0);
  io::set_io_timeout(fd, 3000);

  // Never send a byte: the sweep must close us (read_frame sees EOF, not
  // a timeout — the io timeout above is generous on purpose).
  EXPECT_FALSE(io::read_frame(fd, kDefaultMaxFrame).has_value());
  io::close_fd(fd);
  EXPECT_GE(server.stats().dropped_idle, 1u);

  // An active client is never swept: heartbeats keep it alive across
  // several timeout windows.
  RemoteStore client(client_config(server.port()));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(client.heartbeat());
    std::this_thread::sleep_for(60ms);
  }
  EXPECT_EQ(client.stats().connects, 1u);
}

TEST(KvServerTest, SlowReaderIsDroppedWithoutStallingOthers) {
  KvServer::Config config;
  config.max_write_queue = 64 * 1024;
  KvServer server(config);
  server.start();
  server.backing()->put_slice(1, std::string(1024 * 1024, 'x'));

  // Issue many LIST_SLICES (1 MiB responses) without reading: once the
  // kernel buffers fill, the 64 KiB queue cap trips and the connection is
  // dropped — never buffered without bound, never blocking the loop.
  int slow = io::connect_to("127.0.0.1", server.port(), 500);
  ASSERT_GE(slow, 0);
  io::set_io_timeout(slow, 5000);
  std::string burst;
  for (int i = 0; i < 50; ++i) burst += frame(request_header(MsgType::kListSlices));
  io::write_all(slow, burst);  // may itself fail once the server drops us

  // A well-behaved client on the same loop keeps getting served while the
  // slow one drains/drops.
  RemoteStore client(client_config(server.port()));
  EXPECT_TRUE(client.heartbeat());
  EXPECT_EQ(client.snapshot().size(), 1u);

  // The slow reader's stream ends early: fewer than the 50 requested
  // frames arrive before EOF.
  int delivered = 0;
  while (io::read_frame(slow, kDefaultMaxFrame).has_value()) ++delivered;
  EXPECT_LT(delivered, 50);
  io::close_fd(slow);
  EXPECT_GE(server.stats().dropped_backpressure, 1u);
  EXPECT_TRUE(client.heartbeat());
}

// --- high availability (docs/HA.md) ------------------------------------------

/// Polls `pred` (10 ms period) until it holds or `deadline` passes.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 5000ms) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

/// A replica of the server on `primary_port`, with a pinned reconnect
/// seed.
KvServer::Config replica_config(std::uint16_t primary_port) {
  KvServer::Config config;
  config.role = KvServer::Role::kReplica;
  config.primary = "127.0.0.1:" + std::to_string(primary_port);
  config.replication_backoff_seed = 7;
  return config;
}

TEST(ProtocolTest, DocumentedReplicateExample) {
  // docs/WIRE_PROTOCOL.md §13 worked example: a replica with nothing yet
  // (since generation 0, version 0) subscribes to a fresh generation-7
  // store. The answer is the LIST_SLICES_SINCE shape: generation 7, store
  // version 1, no changed slices, no live sites — and the connection then
  // becomes a server-push stream of the same shape.
  dist::Store::Config backing_config;
  backing_config.generation = 7;
  KvServer server(KvServer::Config{},
                  std::make_shared<dist::Store>(backing_config));

  std::string request = request_header(MsgType::kReplicate);
  append_varint(request, 0);  // since_generation
  append_varint(request, 0);  // since_version
  EXPECT_EQ(hex(request), "01 0b 00 00");
  EXPECT_EQ(hex(server.handle_request(request)), "00 07 01 00 00");
}

TEST(ProtocolTest, DocumentedPromoteExample) {
  // docs/WIRE_PROTOCOL.md §13 worked example, pinned on a server that is
  // already primary: PROMOTE is idempotent there, so the generation-7
  // answer is deterministic. (On a replica the same exchange bumps the
  // generation to a fresh random value first.)
  dist::Store::Config backing_config;
  backing_config.generation = 7;
  KvServer server(KvServer::Config{},
                  std::make_shared<dist::Store>(backing_config));

  std::string request = request_header(MsgType::kPromote);
  EXPECT_EQ(hex(request), "01 0c");
  EXPECT_EQ(hex(server.handle_request(request)), "00 07");
  EXPECT_EQ(server.role(), KvServer::Role::kPrimary);
}

TEST(ProtocolTest, DocumentedNotPrimaryExample) {
  // docs/WIRE_PROTOCOL.md §13 worked example: the §1 PUT_SLICE sent to a
  // replica of 127.0.0.1:7001 draws NOT_PRIMARY (9) + the primary's
  // address as length-delimited bytes.
  KvServer::Config config;
  config.role = KvServer::Role::kReplica;
  config.primary = "127.0.0.1:7001";
  KvServer server(config);

  std::string put = request_header(MsgType::kPutSlice);
  append_varint(put, 2);
  append_varint(put, 3);
  append_bytes(put,
               dist::encode_statuses({status(7, {{1, 1}}, {{1, 1}, {2, 0}})}));
  std::string response = server.handle_request(put);
  EXPECT_EQ(hex(response),
            "09 0e 31 32 37 2e 30 2e 30 2e 31 3a 37 30 30 31");

  std::size_t offset = 0;
  EXPECT_EQ(read_varint(response, &offset),
            static_cast<std::uint64_t>(WireStatus::kNotPrimary));
  EXPECT_EQ(read_bytes(response, &offset), "127.0.0.1:7001");
  expect_end(response, offset);
  EXPECT_GE(server.stats().not_primary, 1u);
}

TEST(ReplicationTest, ReplicaMirrorsPrimaryAndServesReads) {
  KvServer primary;
  primary.start();
  primary.backing()->put_slice(1, "slice-one");  // version 1
  KvServer replica(replica_config(primary.port()));
  replica.start();

  ASSERT_TRUE(eventually([&] {
    auto slice = replica.backing()->get_slice(1);
    return slice.has_value() && slice->payload == "slice-one";
  }));
  // The replicated slice keeps the primary's per-slice version — the
  // fencing invariant leans on versions never being re-minted.
  EXPECT_EQ(replica.backing()->get_slice(1)->version, 1u);

  // Later writes stream through, and removals follow via the live list.
  primary.backing()->put_slice(2, "slice-two");
  ASSERT_TRUE(eventually(
      [&] { return replica.backing()->get_slice(2).has_value(); }));
  primary.backing()->remove_slice(1);
  ASSERT_TRUE(eventually(
      [&] { return !replica.backing()->get_slice(1).has_value(); }));

  // Reads are served by the replica itself; INSPECT reports the role and
  // the link.
  RemoteStore reader(client_config(replica.port()));
  EXPECT_EQ(reader.snapshot().size(), 1u);
  InspectInfo info = reader.inspect();
  EXPECT_EQ(info.role, 1u);
  EXPECT_EQ(info.primary, "127.0.0.1:" + std::to_string(primary.port()));

  KvServer::Stats stats = replica.stats();
  EXPECT_EQ(stats.role, 1u);
  EXPECT_GE(stats.replication_frames, 1u);
  replica.stop();
  primary.stop();
}

TEST(ReplicationTest, MutationsOnReplicaRedirectAndTheClientFollows) {
  KvServer primary;
  primary.start();
  KvServer replica(replica_config(primary.port()));
  replica.start();

  // The client dials the replica first: its put draws NOT_PRIMARY and
  // must transparently land on the primary after one resend.
  RemoteStore::Config config = client_config(replica.port());
  config.endpoints = {Endpoint{"127.0.0.1", replica.port()},
                      Endpoint{"127.0.0.1", primary.port()}};
  config.backoff_seed = 5;
  RemoteStore client(config);

  EXPECT_EQ(client.put_slice(3, "via-redirect"), 1u);
  auto slice = primary.backing()->get_slice(3);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->payload, "via-redirect");

  RemoteStore::Stats stats = client.stats();
  EXPECT_GE(stats.redirects, 1u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(replica.stats().not_primary, 1u);

  // The follow-up goes straight to the primary: no second redirect.
  client.put_slice(3, "again");
  EXPECT_EQ(client.stats().redirects, stats.redirects);
  EXPECT_EQ(client.preferred_endpoint(), 1u);
  replica.stop();
  primary.stop();
}

TEST(ReplicationTest, PromoteBumpsGenerationFencesAndAcceptsWrites) {
  KvServer primary;
  primary.start();
  primary.backing()->put_slice(1, "payload");
  KvServer replica(replica_config(primary.port()));
  replica.start();
  ASSERT_TRUE(eventually(
      [&] { return replica.backing()->get_slice(1).has_value(); }));

  std::uint64_t before = replica.backing()->generation();
  primary.stop();

  RemoteStore control(client_config(replica.port()));
  std::uint64_t promoted = control.promote();
  EXPECT_NE(promoted, before);
  EXPECT_EQ(replica.role(), KvServer::Role::kPrimary);
  EXPECT_EQ(replica.backing()->generation(), promoted);

  // The replicated slice survives promotion — failover fences it behind
  // the fresh generation instead of discarding it — and mutations are
  // accepted from here on.
  EXPECT_TRUE(replica.backing()->get_slice(1).has_value());
  control.put_slice(2, "after-failover");
  EXPECT_TRUE(replica.backing()->get_slice(2).has_value());
  replica.stop();
}

TEST(ReplicationTest, DeltaPublishStraddlingPromotionFallsBackToFull) {
  // The in-flight-delta failover case: a Site that has been delta-
  // publishing against the old primary must not wedge in a BASE_MISMATCH
  // loop when its next delta lands on a just-promoted server that never
  // replicated its base — the publish falls back to the full slice within
  // the same call, and no blocked status is lost.
  KvServer old_primary;
  old_primary.start();
  KvServer::Config standby_config;
  standby_config.role = KvServer::Role::kReplica;  // primary unset: no
  // replication link, so the promoted store is guaranteed to miss the base
  KvServer standby(standby_config);
  standby.start();

  RemoteStore::Config client = client_config(old_primary.port());
  client.endpoints = {Endpoint{"127.0.0.1", old_primary.port()},
                      Endpoint{"127.0.0.1", standby.port()}};
  client.backoff_seed = 9;
  auto store = std::make_shared<RemoteStore>(client);

  dist::Site::Config site_config;
  site_config.id = 4;
  site_config.delta_min_bytes = 1;  // every follow-up publish tries a delta
  dist::Site site(site_config, store);

  // Publish 1 (full) and 2 (delta) against the old primary.
  for (TaskId task = 1; task <= 8; ++task) {
    site.verifier().state().set_blocked(status(task, {{1, 1}}, {{1, 1}}));
  }
  ASSERT_TRUE(site.publish_now());
  site.verifier().state().set_blocked(status(9, {{2, 1}}, {{2, 1}}));
  ASSERT_TRUE(site.publish_now());
  EXPECT_EQ(site.stats().delta_publishes, 1u);

  // Failover: the old primary dies, the standby is promoted. The dead
  // connection is severed via heartbeat (false, and opens the backoff
  // window) so the next publish reconnects transparently through the
  // endpoint walk instead of surfacing the mid-exchange death — that is
  // the window where a delta can straddle the promotion.
  old_primary.stop();
  RemoteStore control(client_config(standby.port()));
  control.promote();
  EXPECT_FALSE(store->heartbeat());
  std::this_thread::sleep_for(30ms);  // past backoff_max

  // Publish 3 straddles the promotion: its delta base does not exist on
  // the promoted server. One call: delta -> BASE_MISMATCH -> full slice.
  site.verifier().state().set_blocked(status(10, {{3, 1}}, {{3, 1}}));
  ASSERT_TRUE(site.publish_now());
  EXPECT_EQ(site.stats().publishes, 3u);
  EXPECT_EQ(site.stats().delta_publishes, 1u);  // the straddler fell back
  auto slice = standby.backing()->get_slice(4);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(dist::decode_statuses(slice->payload).size(), 10u);

  // The next publish re-bases its delta cleanly against the new primary.
  site.verifier().state().set_blocked(status(11, {{4, 1}}, {{4, 1}}));
  ASSERT_TRUE(site.publish_now());
  EXPECT_EQ(site.stats().delta_publishes, 2u);
  standby.stop();
}

TEST(RemoteStoreTest, DecorrelatedJitterBackoffIsSeededAndBounded) {
  KvServer server;
  server.start();
  RemoteStore::Config config = client_config(server.port());
  config.backoff_seed = 42;
  RemoteStore client(config);
  ASSERT_TRUE(client.heartbeat());
  EXPECT_EQ(client.stats().next_backoff_ms, 0u);
  server.stop();

  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW((void)client.snapshot(), dist::StoreUnavailableError);
    std::uint64_t delay = client.stats().next_backoff_ms;
    EXPECT_GE(delay, 5u);   // backoff_initial
    EXPECT_LE(delay, 20u);  // backoff_max caps the jitter
    std::this_thread::sleep_for(25ms);  // step past the window so every
                                        // iteration is a real attempt
  }
  RemoteStore::Stats stats = client.stats();
  EXPECT_GE(stats.reconnect_attempts, 3u);
  EXPECT_GE(stats.failures, 1u);
}

TEST(NetConfigTest, ParsesMultiEndpointUrlList) {
  std::vector<Endpoint> endpoints =
      parse_tcp_endpoints("tcp://10.0.0.1:7000,tcp://10.0.0.2:7001");
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_EQ(endpoints[0].host, "10.0.0.1");
  EXPECT_EQ(endpoints[0].port, 7000u);
  EXPECT_EQ(endpoints[1].host, "10.0.0.2");
  EXPECT_EQ(endpoints[1].port, 7001u);
  EXPECT_THROW(parse_tcp_endpoints("tcp://a:1,"), std::invalid_argument);
  EXPECT_THROW(parse_tcp_endpoints(""), std::invalid_argument);

  auto store = remote_store_from_url("tcp://127.0.0.1:7000,tcp://127.0.0.1:7001");
  ASSERT_EQ(store->endpoints().size(), 2u);
  EXPECT_EQ(store->config().host, "127.0.0.1");
  EXPECT_EQ(store->config().port, 7000u);
}

// --- WATCH_EVENTS + request correlation (docs/WIRE_PROTOCOL.md §14) ----------

TEST(ProtocolTest, RequestIdTrailerSemantics) {
  // End-of-body = 0 (the byte-identical old dialect), one varint = the
  // id, anything further is trailing garbage like it always was.
  std::string none;
  std::size_t offset = 0;
  EXPECT_EQ(read_request_id(none, &offset), 0u);

  std::string one;
  append_varint(one, 200);
  offset = 0;
  EXPECT_EQ(read_request_id(one, &offset), 200u);

  std::string two;
  append_varint(two, 200);
  append_varint(two, 9);
  offset = 0;
  EXPECT_THROW((void)read_request_id(two, &offset), dist::CodecError);
}

TEST(ProtocolTest, DocumentedRequestIdExample) {
  // docs/WIRE_PROTOCOL.md §14: HEARTBEAT stamped with request id 5 — one
  // extra varint after the §5 body; the answer is unchanged.
  KvServer server;
  bool authenticated = false;
  std::uint64_t request_id = 0;
  std::string heartbeat = request_header(MsgType::kHeartbeat);
  append_varint(heartbeat, 5);
  EXPECT_EQ(hex(heartbeat), "01 04 05");
  EXPECT_EQ(hex(server.handle_request(heartbeat, &authenticated, &request_id)),
            "00 01");
  EXPECT_EQ(request_id, 5u);

  // The §1 PUT_SLICE with request id 200 (varint c8 01).
  std::string put = request_header(MsgType::kPutSlice);
  append_varint(put, 2);
  append_varint(put, 3);
  append_bytes(put,
               dist::encode_statuses({status(7, {{1, 1}}, {{1, 1}, {2, 0}})}));
  append_varint(put, 200);
  EXPECT_EQ(hex(put), "01 01 02 03 0a 01 07 01 01 01 02 01 01 02 00 c8 01");
  request_id = 0;
  EXPECT_EQ(hex(server.handle_request(put, &authenticated, &request_id)),
            "00 03");
  EXPECT_EQ(request_id, 200u);
}

TEST(ProtocolTest, DocumentedWatchSubscribeExample) {
  // docs/WIRE_PROTOCOL.md §14: subscribe to every category (mask 7); the
  // answer echoes the effective mask.
  KvServer server;
  std::string subscribe = request_header(MsgType::kWatchEvents);
  append_varint(subscribe, kWatchAll);
  EXPECT_EQ(hex(subscribe), "01 0d 07");
  EXPECT_EQ(hex(server.handle_request(subscribe)), "00 07");

  // Unknown high bits are masked off — the echo shows what is effective.
  std::string extra = request_header(MsgType::kWatchEvents);
  append_varint(extra, 0xff);
  EXPECT_EQ(hex(server.handle_request(extra)), "00 07");

  // A mask selecting no category at all is a bad request.
  std::string none = request_header(MsgType::kWatchEvents);
  append_varint(none, 8);
  EXPECT_EQ(hex(server.handle_request(none)), "01");
}

TEST(KvServerTest, WatchEventsStreamOverTcp) {
  KvServer::Config config;
  config.event_clock = [] { return std::uint64_t{42}; };
  KvServer server(config);
  server.start();

  WatchClient::Config watch_config;
  watch_config.port = server.port();
  watch_config.io_timeout = 2000ms;
  WatchClient watch(std::move(watch_config));
  EXPECT_EQ(watch.mask(), kWatchAll);

  RemoteStore client(client_config(server.port()));
  std::string payload = dist::encode_statuses({status(7, {{1, 1}}, {{1, 1}})});
  client.put_slice(1, payload);
  client.remove_slice(1);

  std::vector<std::string> lines;
  bool removed = false;
  while (!removed) {
    std::optional<std::string> line = watch.next();
    ASSERT_TRUE(line.has_value()) << "stream ended before slice_remove";
    removed = line->find("\"event\":\"slice_remove\"") != std::string::npos;
    lines.push_back(*std::move(line));
  }
  auto contains = [&lines](const std::string& needle) {
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  // The client's connect arrived by push, and the commit line is
  // byte-exact against the armus.kv.event.v1 schema (clock pinned at 42).
  EXPECT_TRUE(contains("{\"v\":1,\"event\":\"conn_accept\",\"ts_ns\":42"));
  EXPECT_TRUE(contains(
      "{\"v\":1,\"event\":\"slice_commit\",\"ts_ns\":42,\"site\":1,"
      "\"version\":1,\"blocked\":1,\"bytes\":" +
      std::to_string(payload.size()) + '}'));
  EXPECT_TRUE(contains(
      "{\"v\":1,\"event\":\"slice_remove\",\"ts_ns\":42,\"site\":1}"));

  // Store outage and recovery are transition events: one line each way,
  // however many requests fail inside the outage.
  server.backing()->set_available(false);
  EXPECT_THROW((void)client.snapshot(), dist::StoreUnavailableError);
  EXPECT_THROW((void)client.snapshot(), dist::StoreUnavailableError);
  server.backing()->set_available(true);
  ASSERT_TRUE(eventually([&client] {
    try {
      return client.snapshot().empty();
    } catch (const dist::StoreUnavailableError&) {
      return false;
    }
  }));
  int down_events = 0;
  bool recovered = false;
  while (!recovered) {
    std::optional<std::string> line = watch.next();
    ASSERT_TRUE(line.has_value()) << "stream ended before recovery event";
    if (line->find("\"event\":\"store_outage\"") == std::string::npos) continue;
    if (line->find("\"down\":true") != std::string::npos) ++down_events;
    if (line->find("\"down\":false") != std::string::npos) recovered = true;
  }
  EXPECT_EQ(down_events, 1);
  server.stop();
}

TEST(KvServerTest, WatchMaskFiltersCategoriesAndSurvivesIdleSweep) {
  KvServer::Config config;
  config.idle_timeout = 100ms;
  KvServer server(config);
  server.start();

  WatchClient::Config watch_config;
  watch_config.port = server.port();
  watch_config.mask = kWatchSlices;
  watch_config.io_timeout = 2000ms;
  WatchClient watch(std::move(watch_config));
  EXPECT_EQ(watch.mask(), kWatchSlices);

  // Lifecycle noise (a connect and its drop) the slices-only mask must
  // filter out, then a commit that must arrive as the first line.
  int fd = io::connect_to("127.0.0.1", server.port(), 500);
  ASSERT_GE(fd, 0);
  io::close_fd(fd);
  std::string put = request_header(MsgType::kPutSlice);
  append_varint(put, 3);
  append_varint(put, 1);
  append_bytes(put, "opaque");
  ASSERT_EQ(response_status(server.handle_request(put)),
            static_cast<std::uint64_t>(WireStatus::kOk));
  std::optional<std::string> line = watch.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"event\":\"slice_commit\""), std::string::npos);
  EXPECT_EQ(line->find("conn_accept"), std::string::npos);

  // The subscription outlives the idle sweep: three windows of inbound
  // silence, and the same connection still delivers.
  std::this_thread::sleep_for(350ms);
  std::string put2 = request_header(MsgType::kPutSlice);
  append_varint(put2, 3);
  append_varint(put2, 2);
  append_bytes(put2, "opaque");
  ASSERT_EQ(response_status(server.handle_request(put2)),
            static_cast<std::uint64_t>(WireStatus::kOk));
  line = watch.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"version\":2"), std::string::npos);
  server.stop();
}

TEST(KvServerTest, StalledWatcherIsDroppedWhileLiveClientKeepsSucceeding) {
  KvServer::Config config;
  config.max_write_queue = 32 * 1024;
  KvServer server(config);
  server.start();

  // A watcher that subscribes and then never reads its socket.
  int stalled = io::connect_to("127.0.0.1", server.port(), 500);
  ASSERT_GE(stalled, 0);
  io::set_io_timeout(stalled, 5000);
  std::string subscribe = request_header(MsgType::kWatchEvents);
  append_varint(subscribe, kWatchAll);
  ASSERT_EQ(response_status(rpc(stalled, subscribe)),
            static_cast<std::uint64_t>(WireStatus::kOk));

  // Pump commits until the push queue overflows the 32 KiB cap: the
  // kernel socket buffers absorb the first bursts, then the ordinary
  // flush() backpressure path drops the subscriber.
  RemoteStore client(client_config(server.port()));
  std::uint64_t version = 0;
  auto deadline = std::chrono::steady_clock::now() + 20s;
  while (server.stats().watch_dropped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::string put = request_header(MsgType::kPutSlice);
    append_varint(put, 5);
    append_varint(put, ++version);
    append_bytes(put, "opaque");
    ASSERT_EQ(response_status(server.handle_request(put)),
              static_cast<std::uint64_t>(WireStatus::kOk));
    if (version % 256 == 0) {
      // The live client keeps succeeding throughout the storm.
      EXPECT_TRUE(client.heartbeat());
      std::this_thread::sleep_for(1ms);
    }
  }
  EXPECT_GE(server.stats().watch_dropped, 1u);
  EXPECT_GE(server.stats().dropped_backpressure, 1u);
  EXPECT_TRUE(client.heartbeat());
  EXPECT_EQ(client.snapshot().size(), 1u);

  // The stalled subscriber's stream just ends; the drop is visible in
  // STATS as kv.watch_dropped.
  while (io::read_frame(stalled, kDefaultMaxFrame).has_value()) {
  }
  io::close_fd(stalled);
  EXPECT_NE(client.stats_json().find("\"kv.watch_dropped\":1"),
            std::string::npos);
  server.stop();
}

TEST(KvServerTest, PerOpcodeTimingAndRequestIdJoinAcrossClientAndServer) {
  KvServer::Config config;
  config.slow_request_us = 1;  // any request doing real work is "slow"
  config.event_clock = [] { return std::uint64_t{42}; };
  KvServer server(config);
  server.start();

  WatchClient::Config watch_config;
  watch_config.port = server.port();
  watch_config.mask = kWatchHealth;
  watch_config.io_timeout = 2000ms;
  WatchClient watch(std::move(watch_config));

  // One put: the client stamps request id 1 and times the exchange; the
  // server times the same request under kv.op.put_slice.latency_us and
  // emits a slow_request event carrying the id — the correlation join.
  RemoteStore client(client_config(server.port()));
  client.put_slice(9, std::string(256 * 1024, 'x'));
  EXPECT_EQ(client.last_request_id(), 1u);

  std::string slow_line;
  for (int i = 0; i < 64 && slow_line.empty(); ++i) {
    std::optional<std::string> line = watch.next();
    ASSERT_TRUE(line.has_value()) << "no slow_request event arrived";
    if (line->find("\"event\":\"slow_request\"") != std::string::npos &&
        line->find("\"op\":\"put_slice\"") != std::string::npos) {
      slow_line = *line;
    }
  }
  ASSERT_FALSE(slow_line.empty());
  EXPECT_NE(slow_line.find("\"request_id\":1"), std::string::npos);

  // Both halves of the join hold a histogram of the same exchange.
  std::string server_json = client.stats_json();
  EXPECT_NE(server_json.find("\"kv.op.put_slice.latency_us\":{\"count\":1"),
            std::string::npos);
  std::string client_json = client.op_registry().snapshot_json();
  EXPECT_NE(client_json.find("\"op.put_slice.latency_us\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(client_json.find("\"op.stats.latency_us\""), std::string::npos);
  server.stop();
}

TEST(RemoteStoreTest, RequestIdsOffSpeaksTheOldDialectByteForByte) {
  // With Config::request_ids off, request bodies are byte-identical to
  // the pre-trailer protocol — pinned by exercising a server that would
  // reject any stray trailing varint beyond the first.
  KvServer server;
  server.start();
  RemoteStore::Config config = client_config(server.port());
  config.request_ids = false;
  RemoteStore client(config);
  EXPECT_EQ(client.put_slice(4, "payload"), 1u);
  EXPECT_TRUE(client.heartbeat());
  EXPECT_EQ(client.last_request_id(), 0u);
  server.stop();
}

TEST(ReplicationTest, TwoReplicasFanOutConvergeAndSurviveOneDying) {
  KvServer primary;
  primary.start();
  primary.backing()->put_slice(1, "one");

  KvServer replica_a(replica_config(primary.port()));
  KvServer replica_b(replica_config(primary.port()));
  replica_a.start();
  replica_b.start();

  // Both REPLICATE subscriptions converge on the commit and serve reads.
  ASSERT_TRUE(eventually([&] {
    return replica_a.backing()->get_slice(1).has_value() &&
           replica_b.backing()->get_slice(1).has_value();
  }));
  RemoteStore reader_a(client_config(replica_a.port()));
  RemoteStore reader_b(client_config(replica_b.port()));
  EXPECT_EQ(reader_a.snapshot().size(), 1u);
  EXPECT_EQ(reader_b.snapshot().size(), 1u);

  // Killing one replica must not disturb the other's stream: the
  // survivor keeps applying fresh commits and serving them.
  replica_a.stop();
  primary.backing()->put_slice(2, "two");
  ASSERT_TRUE(eventually(
      [&] { return replica_b.backing()->get_slice(2).has_value(); }));
  EXPECT_EQ(reader_b.snapshot().size(), 2u);
  KvServer::Stats stats = replica_b.stats();
  EXPECT_EQ(stats.role, 1u);
  EXPECT_GE(stats.replication_frames, 2u);
  replica_b.stop();
  primary.stop();
}

TEST(ReplicationTest, WatchHealthStreamsReplicationTransitionsAndPromotion) {
  KvServer primary;
  primary.start();
  std::uint16_t primary_port = primary.port();
  KvServer replica(replica_config(primary_port));
  replica.start();
  ASSERT_TRUE(eventually([&] { return replica.stats().replication_frames > 0; }));

  // Watch the *replica's* health stream. Transition events are only
  // built while someone watches, so drive a fresh down→up→promote cycle.
  WatchClient::Config watch_config;
  watch_config.port = replica.port();
  watch_config.mask = kWatchHealth;
  watch_config.io_timeout = 5000ms;
  WatchClient watch(std::move(watch_config));

  primary.stop();  // the stream dies → one replication connected:false
  std::optional<std::string> line = watch.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"event\":\"replication\",\"ts_ns\":"),
            std::string::npos);
  EXPECT_NE(line->find("\"connected\":false"), std::string::npos);

  // A new primary on the same port: the subscription comes back up.
  KvServer::Config revived_config;
  revived_config.port = primary_port;
  KvServer revived(revived_config);
  revived.start();
  line = watch.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"connected\":true"), std::string::npos);

  // Promotion emits the generation now fencing the store.
  RemoteStore control(client_config(replica.port()));
  std::uint64_t generation = control.promote();
  bool promoted = false;
  for (int i = 0; i < 8 && !promoted; ++i) {
    line = watch.next();
    ASSERT_TRUE(line.has_value()) << "no promoted event arrived";
    promoted = line->find("\"event\":\"promoted\",\"ts_ns\":") !=
                   std::string::npos &&
               line->find("\"generation\":" + std::to_string(generation)) !=
                   std::string::npos;
  }
  EXPECT_TRUE(promoted);
  replica.stop();
  revived.stop();
}

// --- wire fuzzing ------------------------------------------------------------

TEST(KvServerTest, WireFuzzSmokeHoldsFramingContract) {
  // Deterministic small run of the CI wire fuzzer (armus-fuzz --wire):
  // mutated frames draw clean errors or drops, the server stays live, and
  // LIST_SLICES parses afterwards. Fixed seed = reproducible bytes.
  KvServer server;
  server.start();
  fuzz::WireOptions options;
  options.seed = 1;
  options.runs = 150;
  fuzz::WireStats stats = fuzz_wire(server, options);
  for (const fuzz::Violation& violation : stats.violations) {
    ADD_FAILURE() << violation.what;
  }
  EXPECT_TRUE(stats.ok());
  EXPECT_EQ(stats.mutants, 150u);
  EXPECT_GT(stats.responses, 0u);
  EXPECT_GT(stats.error_responses, 0u);
}

}  // namespace
}  // namespace armus::net
