// Tests for the observability layer (docs/OBSERVABILITY.md): histogram
// percentile properties, the registry's deterministic JSON snapshot, the
// JSONL reporter's golden lines and dedup rules, MultiObserver fan-out,
// the env-configured observer stack feeding trace + events at once,
// Site store-outage transition events, armus-top's view building, and
// the Stats exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "core/checker.h"
#include "dist/codec.h"
#include "dist/site.h"
#include "net/config.h"
#include "net/kv_server.h"
#include "net/remote_store.h"
#include "obs/env.h"
#include "obs/export.h"
#include "obs/jsonl_reporter.h"
#include "obs/multi_observer.h"
#include "obs/registry.h"
#include "obs/top.h"
#include "trace/recorder.h"

namespace armus::obs {
namespace {

using namespace std::chrono_literals;

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Records every callback as one description string, in order.
struct CaptureObserver final : EventObserver {
  std::vector<std::string> events;

  void on_task_registered(TaskId task, PhaserUid phaser, Phase phase) override {
    events.push_back("register t" + std::to_string(task) + " p" +
                     std::to_string(phaser) + "@" + std::to_string(phase));
  }
  void on_task_deregistered(TaskId task, PhaserUid phaser) override {
    events.push_back("deregister t" + std::to_string(task) + " p" +
                     std::to_string(phaser));
  }
  void on_blocked(const BlockedStatus& s) override {
    events.push_back("block t" + std::to_string(s.task));
  }
  void on_block_rollback(TaskId task) override {
    events.push_back("rollback t" + std::to_string(task));
  }
  void on_unblocked(TaskId task) override {
    events.push_back("unblock t" + std::to_string(task));
  }
  void on_scan(const ScanInfo& info) override {
    events.push_back("scan blocked=" + std::to_string(info.blocked));
  }
  void on_report(const DeadlockReport& report) override {
    events.push_back("report tasks=" + std::to_string(report.tasks.size()));
  }
  void on_store_outage(std::uint32_t site, bool down,
                       std::string_view op) override {
    events.push_back(std::string("outage site=") + std::to_string(site) +
                     (down ? " down " : " up ") + std::string(op));
  }
};

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketLayout) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
}

TEST(HistogramTest, EmptyAndSingleSample) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);

  h.record(37);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 37u);
  EXPECT_EQ(h.max(), 37u);
  // One sample: every percentile is that sample (clamped to max).
  EXPECT_EQ(h.percentile(50), 37u);
  EXPECT_EQ(h.percentile(99.9), 37u);
  EXPECT_EQ(h.percentile(100), 37u);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
}

TEST(HistogramTest, MeanIsExactAndMergesExactly) {
  // The mean comes from a running sum, not the buckets, so it is exact
  // even though the percentiles are bucketed.
  Histogram a;
  a.record(1);
  a.record(2);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  Histogram b;
  b.record(9);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_EQ(a.count(), 3u);
}

TEST(HistogramTest, PercentileLandsInTrueRankBucket) {
  // The documented accuracy contract: the estimate falls in the same
  // power-of-two bucket as the true rank-order statistic of a sorted
  // reference — checked over random vectors of assorted sizes.
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 25; ++trial) {
    std::size_t n = 1 + rng() % 500;
    Histogram h;
    std::vector<std::uint64_t> values;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t v = rng() % 1'000'000;
      h.record(v);
      values.push_back(v);
    }
    std::sort(values.begin(), values.end());
    for (double p : {50.0, 90.0, 99.0, 100.0}) {
      auto rank = static_cast<std::size_t>(
          std::ceil(p / 100.0 * static_cast<double>(n)));
      if (rank == 0) rank = 1;
      std::uint64_t truth = values[rank - 1];
      EXPECT_EQ(Histogram::bucket_index(h.percentile(p)),
                Histogram::bucket_index(truth))
          << "trial " << trial << " n " << n << " p " << p << " truth "
          << truth << " estimate " << h.percentile(p);
    }
    EXPECT_EQ(h.percentile(100), values.back());  // p100 is exact
    EXPECT_EQ(h.min(), values.front());
    EXPECT_EQ(h.max(), values.back());
  }
}

// --- Registry ----------------------------------------------------------------

TEST(RegistryTest, CountersGaugesHistograms) {
  Registry registry;
  registry.counter_set("kv.requests", 3);
  registry.counter_add("kv.requests", 2);
  registry.counter_add("kv.errors", 1);
  EXPECT_EQ(registry.counter("kv.requests"), 5u);
  EXPECT_EQ(registry.counter("kv.errors"), 1u);
  EXPECT_EQ(registry.counter("absent"), 0u);

  registry.gauge_set("verifier.mean_edges", 2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("verifier.mean_edges"), 2.5);

  registry.record("publish_us", 7);
  registry.record("publish_us", 9);
  EXPECT_EQ(registry.histogram("publish_us").count(), 2u);
  EXPECT_EQ(registry.histogram("absent").count(), 0u);
}

TEST(RegistryTest, SnapshotJsonGolden) {
  // Sorted keys, no whitespace: the exact document is pinned so the
  // docs/OBSERVABILITY.md example cannot drift from the implementation.
  Registry registry;
  registry.counter_set("kv.requests", 5);
  registry.counter_set("kv.errors", 0);
  registry.gauge_set("verifier.mean_edges", 2.5);
  registry.record("publish_us", 0);
  registry.record("publish_us", 3);
  registry.record("publish_us", 200);
  EXPECT_EQ(
      registry.snapshot_json(),
      "{\"schema\":\"armus.obs.registry.v1\","
      "\"counters\":{\"kv.errors\":0,\"kv.requests\":5},"
      "\"gauges\":{\"verifier.mean_edges\":2.5},"
      "\"histograms\":{\"publish_us\":{\"count\":3,\"min\":0,\"max\":200,"
      "\"mean\":67.6667,\"p50\":3,\"p99\":200,\"p999\":200}}}");
}

TEST(RegistryTest, MergeHistogramsCopiesUnderPrefix) {
  Registry ops;
  ops.record("op.put_slice.latency_us", 12);
  ops.record("op.put_slice.latency_us", 40);

  Registry snapshot;
  snapshot.merge_histograms(ops, "kv.");
  EXPECT_EQ(snapshot.histogram("kv.op.put_slice.latency_us").count(), 2u);
  EXPECT_EQ(snapshot.histogram("op.put_slice.latency_us").count(), 0u);

  // Merge overwrites like the exporters: a second merge mirrors, never
  // accumulates.
  snapshot.merge_histograms(ops, "kv.");
  EXPECT_EQ(snapshot.histogram("kv.op.put_slice.latency_us").count(), 2u);
}

// --- JsonlReporter -----------------------------------------------------------

JsonlReporter::Options fixed_clock_options(const std::string& path) {
  JsonlReporter::Options options;
  options.path = path;
  options.clock = [] { return std::uint64_t{42}; };
  return options;
}

TEST(JsonlReporterTest, GoldenLines) {
  // One line per event, exactly as documented in docs/OBSERVABILITY.md —
  // these strings are the normative examples there.
  std::string path = testing::TempDir() + "/obs_golden.jsonl";
  {
    JsonlReporter reporter(fixed_clock_options(path));
    reporter.on_task_registered(7, 1, 0);
    reporter.on_blocked(status(7, {{1, 1}}, {{1, 1}, {2, 0}}));
    ScanInfo info;
    info.blocked = 2;
    info.nodes = 2;
    info.edges = 2;
    info.model_used = GraphModel::kWfg;
    info.reports = 1;
    reporter.on_scan(info);
    DeadlockReport report;
    report.model = GraphModel::kWfg;
    report.tasks = {7, 9};
    report.resources = {{1, 1}, {2, 1}};
    reporter.on_report(report);
    reporter.on_unblocked(7);
    reporter.on_task_deregistered(7, kAllPhasers);
    reporter.on_store_outage(3, true, "publish");
    EXPECT_EQ(reporter.lines_written(), 7u);
    EXPECT_FALSE(reporter.failed());
  }
  EXPECT_EQ(
      read_lines(path),
      (std::vector<std::string>{
          R"({"v":1,"event":"register","ts_ns":42,"task":7,"phaser":1,"phase":0})",
          R"({"v":1,"event":"block","ts_ns":42,"task":7,"waits":[[1,1]],"regs":[[1,1],[2,0]]})",
          R"({"v":1,"event":"scan","ts_ns":42,"blocked":2,"nodes":2,"edges":2,"model":"wfg","reports":1})",
          R"({"v":1,"event":"report","ts_ns":42,"model":"wfg","tasks":[7,9],"resources":[[1,1],[2,1]]})",
          R"({"v":1,"event":"unblock","ts_ns":42,"task":7})",
          R"({"v":1,"event":"deregister","ts_ns":42,"task":7,"phaser":0})",
          R"({"v":1,"event":"store_outage","ts_ns":42,"site":3,"down":true,"op":"publish"})",
      }));
}

TEST(JsonlReporterTest, DedupsRepublishesAndSpuriousUnblocks) {
  // The same rules as trace::Recorder, so the JSONL stream and the trace
  // of one run tell the same story.
  std::string path = testing::TempDir() + "/obs_dedup.jsonl";
  JsonlReporter reporter(fixed_clock_options(path));
  BlockedStatus s = status(5, {{1, 1}}, {{1, 1}});

  reporter.on_blocked(s);
  reporter.on_blocked(s);  // avoidance recheck re-publish: dropped
  EXPECT_EQ(reporter.lines_written(), 1u);

  reporter.on_unblocked(99);  // never blocked: dropped
  EXPECT_EQ(reporter.lines_written(), 1u);

  reporter.on_unblocked(5);
  EXPECT_EQ(reporter.lines_written(), 2u);
  reporter.on_blocked(s);  // re-blocking after unblock is a fresh line
  EXPECT_EQ(reporter.lines_written(), 3u);
}

TEST(JsonlReporterTest, RollbackRestoresPreviousStatus) {
  std::string path = testing::TempDir() + "/obs_rollback.jsonl";
  JsonlReporter reporter(fixed_clock_options(path));
  BlockedStatus first = status(5, {{1, 1}}, {{1, 1}});
  BlockedStatus second = status(5, {{1, 2}}, {{1, 2}});

  reporter.on_blocked(first);
  reporter.on_blocked(second);
  reporter.on_block_rollback(5);  // store rolled back to `first`
  EXPECT_EQ(reporter.lines_written(), 3u);

  // The reporter's live view is `first` again: re-publishing it dedups,
  // while a rollback with nothing pending is dropped.
  reporter.on_blocked(first);
  reporter.on_block_rollback(5);
  EXPECT_EQ(reporter.lines_written(), 3u);

  // A rollback of a first-ever block erases the task entirely.
  reporter.on_blocked(status(6, {{2, 1}}, {{2, 1}}));
  reporter.on_block_rollback(6);
  reporter.on_unblocked(6);  // not live: dropped
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[2].find("block_rollback"), std::string::npos);
}

TEST(JsonlReporterTest, UnopenablePathThrows) {
  JsonlReporter::Options options;
  options.path = testing::TempDir() + "/no/such/dir/events.jsonl";
  EXPECT_THROW(JsonlReporter reporter(std::move(options)), std::runtime_error);
}

// --- MultiObserver -----------------------------------------------------------

TEST(MultiObserverTest, FansOutEveryCallbackInOrder) {
  auto a = std::make_shared<CaptureObserver>();
  auto b = std::make_shared<CaptureObserver>();
  MultiObserver multi({a, nullptr, b});
  EXPECT_EQ(multi.targets().size(), 2u);

  multi.on_task_registered(1, 2, 0);
  multi.on_blocked(status(1, {{2, 1}}, {{2, 1}}));
  multi.on_block_rollback(1);
  multi.on_unblocked(1);
  multi.on_task_deregistered(1, 2);
  multi.on_scan(ScanInfo{});
  multi.on_report(DeadlockReport{});
  multi.on_store_outage(0, true, "scan");

  ASSERT_EQ(a->events.size(), 8u);
  EXPECT_EQ(a->events, b->events);
  EXPECT_EQ(a->events.front(), "register t1 p2@0");
  EXPECT_EQ(a->events.back(), "outage site=0 down scan");
}

TEST(MultiObserverTest, CombineCollapsesTrivialCases) {
  EXPECT_EQ(combine({}), nullptr);
  EXPECT_EQ(combine({nullptr, nullptr}), nullptr);

  auto solo = std::make_shared<CaptureObserver>();
  EXPECT_EQ(combine({nullptr, solo}), solo);  // no forwarding hop for one

  auto other = std::make_shared<CaptureObserver>();
  std::shared_ptr<EventObserver> both = combine({solo, other});
  ASSERT_NE(both, nullptr);
  EXPECT_NE(both, solo);
  auto* multi = dynamic_cast<MultiObserver*>(both.get());
  ASSERT_NE(multi, nullptr);
  EXPECT_EQ(multi->targets().size(), 2u);
}

// --- env wiring: ARMUS_TRACE + ARMUS_EVENTS feed one run ---------------------

TEST(ObserverFromEnvTest, TraceAndEventsBothReceive) {
  // recorder_from_env()/reporter_from_env() latch on first use, so this
  // is the single env-wiring test in the binary.
  std::string trace_path = testing::TempDir() + "/obs_env.trace";
  std::string events_path = testing::TempDir() + "/obs_env_%p.jsonl";
  ASSERT_EQ(setenv("ARMUS_TRACE", trace_path.c_str(), 1), 0);
  ASSERT_EQ(setenv("ARMUS_EVENTS", events_path.c_str(), 1), 0);

  std::shared_ptr<EventObserver> observer = observer_from_env();
  ASSERT_NE(observer, nullptr);
  // Both singletons resolved, and the combined observer is neither alone.
  std::shared_ptr<trace::Recorder> recorder = trace::recorder_from_env();
  std::shared_ptr<JsonlReporter> reporter = reporter_from_env();
  ASSERT_NE(recorder, nullptr);
  ASSERT_NE(reporter, nullptr);
  EXPECT_NE(observer.get(),
            static_cast<EventObserver*>(recorder.get()));
  EXPECT_NE(observer.get(),
            static_cast<EventObserver*>(reporter.get()));
  // %p expanded: the reporter's sink embeds the pid, not the literal.
  EXPECT_EQ(reporter->path().find("%p"), std::string::npos);

  // One event through the combined observer reaches both sinks; a second
  // observer_from_env() call reuses the same latched instances.
  observer->on_blocked(status(11, {{1, 1}}, {{1, 1}}));
  EXPECT_EQ(recorder->records_written(), 1u);
  EXPECT_EQ(reporter->lines_written(), 1u);

  VerifierConfig config_like = net::verifier_config_from_env();
  ASSERT_NE(config_like.observer, nullptr);
  config_like.observer->on_unblocked(11);
  EXPECT_EQ(recorder->records_written(), 2u);
  EXPECT_EQ(reporter->lines_written(), 2u);

  reporter->on_scan(ScanInfo{});  // direct: reporter-only, trace untouched
  EXPECT_EQ(recorder->records_written(), 2u);

  auto lines = read_lines(reporter->path());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"event\":\"block\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"unblock\""), std::string::npos);

  unsetenv("ARMUS_TRACE");
  unsetenv("ARMUS_EVENTS");
}

// --- Site outage transitions -------------------------------------------------

TEST(SiteOutageTest, EmitsOneEventPerTransition) {
  auto capture = std::make_shared<CaptureObserver>();
  auto store = std::make_shared<dist::Store>();
  dist::Site::Config config;
  config.id = 4;
  config.observer = capture;
  dist::Site site(config, store);
  site.verifier().state().set_blocked(status(1, {{1, 1}}, {{1, 1}}));

  ASSERT_TRUE(site.publish_now());

  store->set_available(false);
  // Change the slice so the publishes reach the store rather than being
  // skipped as unchanged payloads.
  site.verifier().state().set_blocked(status(1, {{1, 2}}, {{1, 2}}));
  EXPECT_FALSE(site.publish_now());
  EXPECT_FALSE(site.publish_now());  // still the same outage: no new event
  EXPECT_FALSE(site.check_now());    // other op, same outage: no new event
  store->set_available(true);
  EXPECT_TRUE(site.publish_now());

  std::vector<std::string> outages;
  for (const std::string& event : capture->events) {
    if (event.rfind("outage", 0) == 0) outages.push_back(event);
  }
  EXPECT_EQ(outages, (std::vector<std::string>{"outage site=4 down publish",
                                               "outage site=4 up publish"}));
  EXPECT_EQ(site.stats().store_failures, 3u);
}

// --- armus-top view ----------------------------------------------------------

net::RemoteStore::Config client_config(std::uint16_t port) {
  net::RemoteStore::Config config;
  config.host = "127.0.0.1";
  config.port = port;
  config.connect_timeout = 200ms;
  return config;
}

TEST(TopViewTest, FindsCrossSiteCycleAndRenders) {
  net::KvServer server;
  server.start();
  net::RemoteStore client(client_config(server.port()));

  // The two-process demo's shape: each site publishes one half of the
  // classic two-phaser cycle; only the merged snapshot contains it.
  client.put_slice(
      1, dist::encode_statuses({status(1, {{1, 1}}, {{1, 1}, {2, 0}})}));
  client.put_slice(
      2, dist::encode_statuses({status(2, {{2, 1}}, {{2, 1}, {1, 0}})}));
  server.backing()->put_slice(9, "garbage");  // corrupt, must not blind us

  TopView view = build_top_view(client, GraphModel::kAuto);
  EXPECT_EQ(view.merged.size(), 2u);
  EXPECT_EQ(view.corrupt_slices, 1u);
  ASSERT_EQ(view.info.sites.size(), 3u);
  ASSERT_EQ(view.check.reports.size(), 1u);
  EXPECT_EQ(view.check.reports[0].tasks, (std::vector<TaskId>{1, 2}));

  std::string json = render_top_json(view);
  EXPECT_NE(json.find("\"schema\":\"armus.top.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"blocked_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"corrupt_slices\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tasks\":[1,2]"), std::string::npos);

  std::string table = render_top_table(view, "tcp://test");
  EXPECT_NE(table.find("DEADLOCK"), std::string::npos);
  EXPECT_NE(table.find("corrupt slices skipped: 1"), std::string::npos);

  // The dot dump is always the task-level WFG: both deadlocked tasks
  // appear even though the analysis may have preferred the SG.
  std::string dot = render_top_dot(view);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t1"), std::string::npos);
  EXPECT_NE(dot.find("t2"), std::string::npos);

  server.backing()->set_available(false);
  EXPECT_THROW((void)build_top_view(client, GraphModel::kAuto),
               dist::StoreUnavailableError);
}

// --- exporters ---------------------------------------------------------------

TEST(ExportStatsTest, AllOverloadsPopulateTheRegistry) {
  Registry registry;

  Verifier::Stats vs;
  vs.checks = 4;
  vs.total_edges = 10;
  vs.max_edges = 5;
  export_stats(registry, "verifier", vs);
  EXPECT_EQ(registry.counter("verifier.checks"), 4u);
  EXPECT_EQ(registry.counter("verifier.max_edges"), 5u);
  EXPECT_DOUBLE_EQ(registry.gauge("verifier.mean_edges"), 2.5);

  dist::Site::Stats ss;
  ss.publishes = 7;
  ss.store_failures = 1;
  export_stats(registry, "site0", ss);
  EXPECT_EQ(registry.counter("site0.publishes"), 7u);
  EXPECT_EQ(registry.counter("site0.store_failures"), 1u);

  net::KvServer::Stats ks;
  ks.requests = 42;
  export_stats(registry, "kv", ks);
  EXPECT_EQ(registry.counter("kv.requests"), 42u);

  net::RemoteStore::Stats rs;
  rs.connects = 2;
  export_stats(registry, "client", rs);
  EXPECT_EQ(registry.counter("client.connects"), 2u);

  auto backing = std::make_shared<dist::Store>();
  backing->put_slice(1, dist::encode_statuses({status(1, {{1, 1}}, {})}));
  dist::SharedStore shared(backing, 0);
  (void)shared.blocked_count();
  export_stats(registry, "shared", shared);
  EXPECT_EQ(registry.counter("shared.decodes"), 1u);

  // Re-export overwrites: the registry mirrors, never accumulates.
  ks.requests = 50;
  export_stats(registry, "kv", ks);
  EXPECT_EQ(registry.counter("kv.requests"), 50u);

  std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"kv.requests\":50"), std::string::npos);
  EXPECT_NE(json.find("\"verifier.mean_edges\":2.5"), std::string::npos);
}

}  // namespace
}  // namespace armus::obs
