// Stress and property tests for the phaser under concurrent churn: the
// observed-phase invariants must hold while members register, arrive,
// deregister and await from many threads — the §2 "dynamic membership"
// capability under fire.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "phaser/phaser.h"
#include "util/rng.h"

namespace armus::ph {
namespace {

using namespace std::chrono_literals;

TEST(PhaserStressTest, LockstepCountersOverManyThreadsAndSteps) {
  constexpr int kTasks = 16;
  constexpr int kSteps = 200;
  auto p = Phaser::create(nullptr);
  for (TaskId t = 1; t <= kTasks; ++t) p->register_task(t, 0);

  std::vector<int> counters(kTasks, 0);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kTasks; ++t) {
    threads.emplace_back([&, t] {
      TaskId self = static_cast<TaskId>(t + 1);
      for (int s = 0; s < kSteps; ++s) {
        counters[static_cast<std::size_t>(t)] = s;
        p->advance(self);
        // After the barrier every counter must have reached s.
        for (int other = 0; other < kTasks; ++other) {
          if (counters[static_cast<std::size_t>(other)] < s) failed = true;
        }
        p->advance(self);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(p->observed_phase(), 2u * kSteps);
}

TEST(PhaserStressTest, MembershipChurnKeepsObservedMonotonic) {
  // A core invariant of the logical clock: the observed phase never moves
  // backwards, no matter how members come and go.
  auto p = Phaser::create(nullptr);
  TaskId anchor = 1;
  p->register_task(anchor, 0);

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread monitor([&] {
    Phase last = 0;
    while (!stop.load()) {
      Phase now = p->observed_phase();
      if (now != kPhaseInfinity) {
        if (now < last) violation = true;
        last = now;
      }
    }
  });

  std::thread anchor_thread([&] {
    for (int i = 0; i < 3000; ++i) p->arrive(anchor);
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 6; ++t) {
    churners.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 1500; ++i) {
        TaskId guest = fresh_task_id();
        // Join at the observed phase, arrive a few times, leave.
        try {
          p->register_task_at_observed(guest);
        } catch (const PhaserError&) {
          continue;  // lost a race with an arriving anchor: fine, retry later
        }
        int arrivals = static_cast<int>(rng.below(3));
        for (int a = 0; a < arrivals; ++a) p->arrive(guest);
        p->deregister(guest);
      }
    });
  }
  anchor_thread.join();
  for (auto& c : churners) c.join();
  stop.store(true);
  monitor.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(p->local_phase(anchor), 3000u);
}

TEST(PhaserStressTest, WaitersAlwaysReleasedByChurn) {
  // Waiters on successive phases must always be released when the members
  // advance past them, even with concurrent registration churn.
  auto p = Phaser::create(nullptr);
  constexpr int kMembers = 4;
  for (TaskId t = 1; t <= kMembers; ++t) p->register_task(t, 0);

  constexpr Phase kTarget = 400;
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int w = 0; w < 6; ++w) {
    waiters.emplace_back([&, w] {
      TaskId self = 100 + static_cast<TaskId>(w);
      for (Phase n = 1 + static_cast<Phase>(w); n <= kTarget; n += 6) {
        p->await(self, n);
      }
      ++released;
    });
  }
  std::vector<std::thread> members;
  for (int m = 0; m < kMembers; ++m) {
    members.emplace_back([&, m] {
      TaskId self = static_cast<TaskId>(m + 1);
      for (Phase n = 0; n < kTarget; ++n) p->arrive(self);
    });
  }
  for (auto& t : members) t.join();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(released.load(), 6);
  EXPECT_EQ(p->observed_phase(), kTarget);
}

TEST(PhaserStressTest, SplitPhaseTicketsAreDense) {
  // Concurrent lone arrivals from one task per thread: each task's tickets
  // must be exactly 1..k (local phases never skip or repeat).
  auto p = Phaser::create(nullptr);
  constexpr int kTasks = 8;
  constexpr int kArrivals = 500;
  for (TaskId t = 1; t <= kTasks; ++t) p->register_task(t, 0);
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kTasks; ++t) {
    threads.emplace_back([&, t] {
      TaskId self = static_cast<TaskId>(t + 1);
      for (Phase expected = 1; expected <= kArrivals; ++expected) {
        if (p->arrive(self) != expected) bad = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(p->observed_phase(), static_cast<Phase>(kArrivals));
}

TEST(PhaserStressTest, VerifiedChurnLeavesRegistryClean) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 1000ms;  // scanner effectively idle
  Verifier verifier(config);
  auto p = Phaser::create(&verifier);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        TaskId guest = fresh_task_id();
        try {
          p->register_task_at_observed(guest);
        } catch (const PhaserError&) {
          continue;
        }
        p->arrive(guest);
        p->deregister(guest);
        EXPECT_TRUE(verifier.registry().entries(guest).empty());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(p->member_count(), 0u);
}

}  // namespace
}  // namespace armus::ph
