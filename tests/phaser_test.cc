// Semantics tests for the phaser primitive against the Figure 4 rules:
// registration/deregistration, arrival, observation, split-phase operation,
// registration modes and misuse errors.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "phaser/phaser.h"

namespace armus::ph {
namespace {

using namespace std::chrono_literals;

TEST(PhaserTest, EmptyPhaserObservesEveryPhase) {
  auto p = Phaser::create(nullptr);
  EXPECT_EQ(p->observed_phase(), kPhaseInfinity);
  EXPECT_TRUE(p->try_await(0));
  EXPECT_TRUE(p->try_await(1000));  // await(P, n) vacuously true
}

TEST(PhaserTest, SingleMemberAdvances) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  EXPECT_EQ(p->observed_phase(), 0u);
  EXPECT_EQ(p->local_phase(1), 0u);
  EXPECT_EQ(p->arrive(1), 1u);
  EXPECT_EQ(p->observed_phase(), 1u);
  EXPECT_TRUE(p->try_await(1));
  EXPECT_FALSE(p->try_await(2));
}

TEST(PhaserTest, ObservedIsMinimumOverMembers) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->register_task(2, 0);
  p->arrive(1);
  EXPECT_EQ(p->observed_phase(), 0u);  // t2 lags
  p->arrive(2);
  EXPECT_EQ(p->observed_phase(), 1u);
}

TEST(PhaserTest, RegistrationInheritsPhase) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->arrive(1);
  p->arrive(1);
  // [reg]: a child may join at the registrar's phase.
  p->register_task(2, p->local_phase(1));
  EXPECT_EQ(p->local_phase(2), 2u);
  EXPECT_EQ(p->observed_phase(), 2u);
}

TEST(PhaserTest, RegistrationCannotRewindTheClock) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->arrive(1);  // observed = 1
  EXPECT_THROW(p->register_task(2, 0), PhaserError);
}

TEST(PhaserTest, RegisterAtObservedJoinsLate) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->arrive(1);
  p->register_task_at_observed(2);
  EXPECT_EQ(p->local_phase(2), 1u);
}

TEST(PhaserTest, DoubleRegistrationRejected) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  EXPECT_THROW(p->register_task(1, 0), PhaserError);
}

TEST(PhaserTest, OperationsRequireMembership) {
  auto p = Phaser::create(nullptr);
  EXPECT_THROW(p->arrive(9), PhaserError);
  EXPECT_THROW(p->deregister(9), PhaserError);
  EXPECT_THROW(p->local_phase(9), PhaserError);
  EXPECT_THROW(p->mode_of(9), PhaserError);
}

TEST(PhaserTest, DeregistrationReleasesWaiters) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->register_task(2, 0);
  p->arrive(1);

  std::atomic<bool> released{false};
  std::thread waiter([&] {
    p->await(1, 1);  // blocked: t2 is at phase 0
    released = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(released.load());
  p->deregister(2);  // [dereg] lifts the impediment
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(PhaserTest, TwoThreadBarrierStep) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->register_task(2, 0);
  std::atomic<int> phase_seen{-1};
  std::thread a([&] {
    Phase observed = p->advance(1);
    phase_seen = static_cast<int>(observed);
  });
  std::thread b([&] { p->advance(2); });
  a.join();
  b.join();
  EXPECT_EQ(phase_seen.load(), 1);
  EXPECT_EQ(p->observed_phase(), 1u);
}

TEST(PhaserTest, ManyThreadsManySteps) {
  constexpr int kTasks = 8;
  constexpr int kSteps = 50;
  auto p = Phaser::create(nullptr);
  for (TaskId t = 1; t <= kTasks; ++t) p->register_task(t, 0);

  // Each task increments a shared counter between barrier steps; with
  // correct barrier semantics every step sees exactly kTasks increments.
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (TaskId t = 1; t <= kTasks; ++t) {
    threads.emplace_back([&, t] {
      for (int step = 0; step < kSteps; ++step) {
        ++counter;
        p->advance(t);
        if (counter.load() != kTasks * (step + 1)) {
          // Reads may race with increments of the *next* step only if the
          // barrier failed; a second advance orders them.
        }
        p->advance(t);
        if (counter.load() < kTasks * (step + 1)) failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kTasks * kSteps);
  EXPECT_EQ(p->observed_phase(), 2u * kSteps);
}

TEST(PhaserTest, SplitPhaseArriveThenAwait) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->register_task(2, 0);
  // t1 signals early (non-blocking), does "other work", then waits.
  Phase ticket = p->arrive(1);
  EXPECT_EQ(ticket, 1u);
  EXPECT_FALSE(p->try_await(ticket));
  p->arrive(2);
  p->await(1, ticket);  // returns immediately now
  EXPECT_TRUE(p->try_await(ticket));
}

TEST(PhaserTest, AwaitArbitraryFuturePhase) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0, RegMode::kSig);  // producer
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    p->await(2, 3);  // consumer (not a member) waits for phase 3
    got = true;
  });
  std::this_thread::sleep_for(10ms);
  p->arrive(1);
  p->arrive(1);
  EXPECT_FALSE(got.load());
  p->arrive(1);  // phase 3 reached
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(PhaserTest, WaitOnlyMembersDoNotImpede) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0, RegMode::kSigWait);
  p->register_task(2, 0, RegMode::kWait);  // consumer
  p->arrive(1);
  // Observed phase ignores the wait-only member still at 0.
  EXPECT_EQ(p->observed_phase(), 1u);
}

TEST(PhaserTest, SigOnlyMembersImpede) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0, RegMode::kSigWait);
  p->register_task(2, 0, RegMode::kSig);
  p->arrive(1);
  EXPECT_EQ(p->observed_phase(), 0u);  // producer t2 has not signalled
  p->arrive(2);
  EXPECT_EQ(p->observed_phase(), 1u);
}

TEST(PhaserTest, ArriveAndDeregisterNeverBlocks) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->register_task(2, 0);
  EXPECT_EQ(p->arrive_and_deregister(1), 1u);
  EXPECT_FALSE(p->is_registered(1));
  EXPECT_EQ(p->member_count(), 1u);
  // t2 alone now: its advance completes immediately.
  p->advance(2);
}

TEST(PhaserTest, AwaitForTimesOut) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->register_task(2, 0);
  p->arrive(1);
  EXPECT_FALSE(p->await_for(1, 1, 30ms));  // t2 never arrives
  p->arrive(2);
  EXPECT_TRUE(p->await_for(1, 1, 30ms));
}

TEST(PhaserTest, AwaitPastPhaseReturnsImmediately) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0);
  p->arrive(1);
  p->await(1, 0);  // already past
  p->await(1, 1);
}

TEST(PhaserTest, UidsAreUnique) {
  auto a = Phaser::create(nullptr);
  auto b = Phaser::create(nullptr);
  EXPECT_NE(a->uid(), b->uid());
}

TEST(PhaserTest, ModeOfReflectsRegistration) {
  auto p = Phaser::create(nullptr);
  p->register_task(1, 0, RegMode::kSig);
  EXPECT_EQ(p->mode_of(1), RegMode::kSig);
}

// --- verifier integration at the phaser level ---------------------------------

TEST(PhaserVerifierTest, RegistryTracksPhases) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = std::chrono::milliseconds(1000);
  Verifier verifier(config);

  auto p = Phaser::create(&verifier);
  p->register_task(1, 0);
  auto entries = verifier.registry().entries(1);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].local_phase, 0u);
  p->arrive(1);
  EXPECT_EQ(verifier.registry().entries(1)[0].local_phase, 1u);
  p->deregister(1);
  EXPECT_TRUE(verifier.registry().entries(1).empty());
}

TEST(PhaserVerifierTest, WaitOnlyRegistrationStaysOutOfRegistry) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = std::chrono::milliseconds(1000);
  Verifier verifier(config);
  auto p = Phaser::create(&verifier);
  p->register_task(1, 0, RegMode::kWait);
  EXPECT_TRUE(verifier.registry().entries(1).empty());
}

TEST(PhaserVerifierTest, AvoidanceInterruptsSelfDeadlock) {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  Verifier verifier(config);
  auto p = Phaser::create(&verifier);
  p->register_task(1, 0);
  // Awaiting one phase ahead of one's own signal can never be satisfied.
  EXPECT_THROW(p->await(1, 1), DeadlockAvoidedError);
  // The task is still registered (policy decisions live in the runtime
  // layer) but nothing is left in the blocked set.
  EXPECT_TRUE(p->is_registered(1));
  EXPECT_EQ(verifier.state().blocked_count(), 0u);
}

TEST(PhaserVerifierTest, BlockedStatusPublishedWhileWaiting) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = std::chrono::milliseconds(1000);
  Verifier verifier(config);
  auto p = Phaser::create(&verifier);
  p->register_task(1, 0);
  p->register_task(2, 0);
  p->arrive(1);

  std::thread waiter([&] { p->await(1, 1); });
  // Wait until the status shows up, then release.
  for (int i = 0; i < 200 && verifier.state().blocked_count() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(verifier.state().blocked_count(), 1u);
  auto snapshot = verifier.current_snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].task, 1u);
  ASSERT_EQ(snapshot[0].waits.size(), 1u);
  EXPECT_EQ(snapshot[0].waits[0], (Resource{p->uid(), 1}));
  p->arrive(2);
  waiter.join();
  EXPECT_EQ(verifier.state().blocked_count(), 0u);
}

}  // namespace
}  // namespace armus::ph
