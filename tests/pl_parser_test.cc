// Parser tests: concrete-syntax round trips with the pretty printer,
// acceptance of the paper's Figure 3, and error reporting.
#include <gtest/gtest.h>

#include "pl/deadlock.h"
#include "pl/explorer.h"
#include "pl/parser.h"

namespace armus::pl {
namespace {

TEST(ParserTest, EmptyProgram) {
  EXPECT_TRUE(parse_program("").empty());
  EXPECT_TRUE(parse_program("  \n // just a comment\n").empty());
}

TEST(ParserTest, SimpleInstructions) {
  Seq seq = parse_program("p = newPhaser(); adv(p); await(p); dereg(p); skip;");
  ASSERT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq[0].op, Op::kNewPhaser);
  EXPECT_EQ(seq[1].op, Op::kAdv);
  EXPECT_EQ(seq[2].op, Op::kAwait);
  EXPECT_EQ(seq[3].op, Op::kDereg);
  EXPECT_EQ(seq[4].op, Op::kSkip);
  EXPECT_EQ(seq[1].var, "p");
}

TEST(ParserTest, RegUsesPaperArgumentOrder) {
  // Figure 3 writes reg(pc, t): phaser first, task second.
  Seq seq = parse_program("p = newPhaser(); t = newTid(); reg(p, t);");
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[2].op, Op::kReg);
  EXPECT_EQ(seq[2].var, "t");   // task var
  EXPECT_EQ(seq[2].var2, "p");  // phaser var
}

TEST(ParserTest, ForkAndLoopBlocks) {
  Seq seq = parse_program(R"(
    t = newTid();
    fork(t)
      loop
        skip;
      end;
    end;
  )");
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[1].op, Op::kFork);
  ASSERT_NE(seq[1].body, nullptr);
  ASSERT_EQ(seq[1].body->size(), 1u);
  EXPECT_EQ((*seq[1].body)[0].op, Op::kLoop);
}

TEST(ParserTest, CommentsAreSkipped) {
  Seq seq = parse_program(R"(
    // leading comment
    skip;  // trailing comment
    skip;
  )");
  EXPECT_EQ(seq.size(), 2u);
}

TEST(ParserTest, PrettyPrintRoundTrip) {
  Seq original = parse_program(R"(
    pc = newPhaser();
    pb = newPhaser();
    t0 = newTid();
    reg(pc, t0);
    reg(pb, t0);
    fork(t0)
      loop
        skip;
        adv(pc);
        await(pc);
      end;
      dereg(pc);
      dereg(pb);
    end;
    adv(pb);
    await(pb);
  )");
  Seq reparsed = parse_program(to_string(original));
  EXPECT_EQ(original, reparsed);
}

TEST(ParserTest, ParsedFigure3DeadlocksUnderExploration) {
  Seq program = parse_program(R"(
    pc = newPhaser();
    pb = newPhaser();
    t0 = newTid();
    reg(pc, t0); reg(pb, t0);
    fork(t0)
      adv(pc); await(pc);
      dereg(pc); dereg(pb);
    end;
    adv(pb); await(pb);
  )");
  ExploreResult result = explore(program, {20000, 60});
  EXPECT_GT(result.deadlocked_states, 0u);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  try {
    parse_program("skip;\nskip;\nbogus(p);\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_program("skip"), ParseError);            // missing ';'
  EXPECT_THROW(parse_program("adv(p;"), ParseError);          // missing ')'
  EXPECT_THROW(parse_program("x = frob();"), ParseError);     // unknown call
  EXPECT_THROW(parse_program("loop skip; "), ParseError);     // missing end
  EXPECT_THROW(parse_program("fork(t) skip; end"), ParseError);  // missing ';'
  EXPECT_THROW(parse_program("reg(p);"), ParseError);         // arity
  EXPECT_THROW(parse_program("@"), ParseError);               // bad char
  EXPECT_THROW(parse_program("skip; )"), ParseError);         // trailing junk
}

TEST(ParserTest, EndAsVariableNameIsRejected) {
  // `end` is the block closer; using it as a variable cannot parse.
  EXPECT_THROW(parse_program("end = newTid();"), ParseError);
}

}  // namespace
}  // namespace armus::pl
