// Executable versions of the paper's metatheory, checked over explored state
// spaces of random and hand-written PL programs:
//
//   * Soundness  (Theorem 4.10): a WFG cycle on ϕ(S) implies S is deadlocked
//     per Definition 3.2.
//   * Completeness (Theorem 4.15): a deadlocked S yields a WFG cycle on ϕ(S).
//   * Equivalence (Theorem 4.8): WFG cycle iff SG cycle (and GRG agrees).
//
// The ground truth (is_deadlocked) is computed from the definitions by
// fixpoint, with no graph machinery — so these tests genuinely cross-check
// two independent implementations.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "graph/cycle.h"
#include "pl/deadlock.h"
#include "pl/explorer.h"
#include "pl/generator.h"

namespace armus::pl {
namespace {

struct PropertyCounters {
  std::size_t states = 0;
  std::size_t deadlocked = 0;
  std::size_t cyclic = 0;
};

/// Checks all three theorems on one state; returns whether it deadlocked.
void check_theorems(const State& state, PropertyCounters& counters,
                    const Seq& program) {
  ++counters.states;
  auto statuses = phi(state);
  bool ground = is_deadlocked(state);

  bool wfg = graph::has_cycle(build_wfg(statuses).graph);
  bool sg = graph::has_cycle(build_sg(statuses).graph);
  bool grg = graph::has_cycle(build_grg(statuses).graph);
  bool adaptive = graph::has_cycle(build_auto(statuses).graph);

  EXPECT_EQ(wfg, ground) << "soundness/completeness failed on\n"
                         << "program:\n" << to_string(program)
                         << "state:\n" << state.to_string();
  EXPECT_EQ(wfg, sg) << "Theorem 4.8 (WFG<->SG) failed on\n"
                     << state.to_string();
  EXPECT_EQ(wfg, grg) << "GRG equivalence failed on\n" << state.to_string();
  EXPECT_EQ(wfg, adaptive) << "adaptive selection changed the verdict on\n"
                           << state.to_string();

  if (ground) ++counters.deadlocked;
  if (wfg) ++counters.cyclic;
}

class RandomProgramTheorems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramTheorems, HoldOnAllReachableStates) {
  util::Xoshiro256 rng(GetParam());
  PropertyCounters counters;
  for (int i = 0; i < 8; ++i) {
    Seq program = random_program(rng);
    explore(program, {2500, 40},
            [&](const State& s) { check_theorems(s, counters, program); });
  }
  EXPECT_GT(counters.states, 30u);  // the exploration actually did work
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTheorems,
                         ::testing::Range<std::uint64_t>(1, 31));

// --- targeted shapes the random generator may undersample ----------------------

TEST(TheoremShapes, MissingParticipantIsStarvationNotDeadlock) {
  // The child terminates while still registered at phase 0; the root then
  // waits forever. Definition 3.2 deliberately does NOT call this a
  // deadlock (the impeder is not a *blocked* task) and neither may the
  // graph analysis: both sides must agree on "no cycle".
  Seq program{
      new_phaser("p"), new_tid("t"), reg("t", "p"),
      fork("t", {skip()}),  // child never advances nor deregisters
      adv("p"), await("p"),
  };
  PropertyCounters counters;
  explore(program, {2000, 30},
          [&](const State& s) { check_theorems(s, counters, program); });
  EXPECT_EQ(counters.deadlocked, 0u);
  EXPECT_EQ(counters.cyclic, 0u);
}

TEST(TheoremShapes, TwoPhaserMutualBlock) {
  // The minimal genuine PL deadlock: two phasers, two tasks, each blocked
  // at its own barrier step while holding the other's back. (Single-phaser
  // deadlocks cannot exist in PL: a task always awaits its *own* phase, so
  // the impeded-by relation on one phaser is acyclic by phase ordering.)
  Seq program{
      new_phaser("p"), new_phaser("q"),
      new_tid("t"), reg("t", "p"), reg("t", "q"),
      fork("t", {adv("p"), await("p")}),  // t needs root to advance p
      adv("q"), await("q"),               // root needs t to advance q
  };
  PropertyCounters counters;
  explore(program, {2000, 30},
          [&](const State& s) { check_theorems(s, counters, program); });
  EXPECT_GT(counters.deadlocked, 0u);
  EXPECT_EQ(counters.deadlocked, counters.cyclic);
}

TEST(TheoremShapes, ThreeWayCycle) {
  // Three tasks, three phasers, ring dependency: t_i advances p_i, awaits
  // p_{i+1}'s next phase. Classic multi-barrier cycle.
  Seq program{
      new_phaser("p0"), new_phaser("p1"), new_phaser("p2"),
      new_tid("a"), reg("a", "p0"), reg("a", "p1"),
      fork("a", {adv("p0"), await("p1"), dereg("p0"), dereg("p1")}),
      new_tid("b"), reg("b", "p1"), reg("b", "p2"),
      fork("b", {adv("p1"), await("p2"), dereg("p1"), dereg("p2")}),
      dereg("p0"), dereg("p1"),
      adv("p2"), await("p0"),  // driver: stuck note — driver deregistered p0
  };
  // The driver's await(p0) after dereg(p0) is stuck, not blocked; replace
  // with a well-formed variant below. This variant checks that stuck tasks
  // are tolerated by the analysis (they are simply not blocked).
  PropertyCounters counters;
  explore(program, {4000, 50},
          [&](const State& s) { check_theorems(s, counters, program); });
  EXPECT_GT(counters.states, 10u);
}

TEST(TheoremShapes, SinglePhaserNeverDeadlocks) {
  // Driver races two phases ahead and waits; the consumer lags or
  // terminates registered. Phases on one phaser are totally ordered, so no
  // reachable state may be deadlocked — and no graph may be cyclic.
  Seq program{
      new_phaser("p"),
      new_tid("c"), reg("c", "p"),
      fork("c", {await("p"), adv("p")}),
      adv("p"), adv("p"), await("p"),
  };
  PropertyCounters counters;
  explore(program, {3000, 40},
          [&](const State& s) { check_theorems(s, counters, program); });
  EXPECT_EQ(counters.deadlocked, 0u);
  EXPECT_EQ(counters.cyclic, 0u);
}

TEST(TheoremShapes, DeregBreaksTheCycle) {
  // Same as the running example but the driver deregisters: no reachable
  // state may be deadlocked.
  Seq program{
      new_phaser("pc"), new_phaser("pb"),
      new_tid("t"), reg("t", "pc"), reg("t", "pb"),
      fork("t", {adv("pc"), await("pc"), dereg("pc"), dereg("pb")}),
      dereg("pc"),
      adv("pb"), await("pb"),
  };
  PropertyCounters counters;
  explore(program, {4000, 50},
          [&](const State& s) { check_theorems(s, counters, program); });
  EXPECT_EQ(counters.deadlocked, 0u);
  EXPECT_EQ(counters.cyclic, 0u);
}

TEST(TheoremShapes, SplitPhaseLoneAdvances) {
  // Split-phase: tasks advance without awaiting (fuzzy barrier); a final
  // await far ahead. Multiple outstanding phases per phaser.
  Seq program{
      new_phaser("p"),
      new_tid("t"), reg("t", "p"),
      fork("t", {adv("p"), adv("p"), await("p")}),
      adv("p"),
  };
  PropertyCounters counters;
  explore(program, {3000, 40},
          [&](const State& s) { check_theorems(s, counters, program); });
  EXPECT_GT(counters.states, 5u);
}

}  // namespace
}  // namespace armus::pl
