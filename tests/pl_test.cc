// Unit tests for the PL core language: the Figure 4 rules, the deadlock
// definitions, the ϕ abstraction, and the Figure 3 running example.
#include <gtest/gtest.h>

#include "pl/deadlock.h"
#include "pl/explorer.h"
#include "pl/generator.h"
#include "pl/semantics.h"

namespace armus::pl {
namespace {

/// Applies the only enabled step of the given task (loops pick `kind`).
State step_task(const State& state, TaskName task,
                Step::Kind kind = Step::Kind::kPlain) {
  return apply_step(state, Step{task, kind});
}

// --- individual rules ---------------------------------------------------------

TEST(SemanticsTest, SkipPopsInstruction) {
  State s = initial_state({skip(), skip()});
  EXPECT_EQ(s.tasks.at(1).remaining.size(), 2u);
  s = step_task(s, 1);
  EXPECT_EQ(s.tasks.at(1).remaining.size(), 1u);
  EXPECT_EQ(task_status(s, 1), TaskStatus::kRunnable);
}

TEST(SemanticsTest, NewTidCreatesTerminatedTask) {
  State s = initial_state({new_tid("t")});
  s = step_task(s, 1);
  EXPECT_EQ(s.tasks.size(), 2u);
  TaskName fresh = s.tasks.at(1).env.at("t");
  EXPECT_EQ(task_status(s, fresh), TaskStatus::kTerminated);
}

TEST(SemanticsTest, ForkInstallsBodyWithParentEnv) {
  State s = initial_state({new_phaser("p"), new_tid("t"), reg("t", "p"),
                           fork("t", {adv("p")})});
  s = step_task(s, 1);  // newPhaser
  s = step_task(s, 1);  // newTid
  s = step_task(s, 1);  // reg
  s = step_task(s, 1);  // fork
  TaskName child = s.tasks.at(1).env.at("t");
  EXPECT_EQ(task_status(s, child), TaskStatus::kRunnable);
  // The child's env resolves p: its adv must be executable.
  State after = step_task(s, child);
  PhaserName p = s.tasks.at(1).env.at("p");
  EXPECT_EQ(after.phasers.at(p).at(child), 1u);
}

TEST(SemanticsTest, ForkBeforeNewTidIsStuck) {
  State s = initial_state({fork("t", {skip()})});
  EXPECT_EQ(task_status(s, 1), TaskStatus::kStuck);
  EXPECT_TRUE(enabled_steps(s).empty());
}

TEST(SemanticsTest, NewPhaserRegistersCreatorAtZero) {
  State s = initial_state({new_phaser("p")});
  s = step_task(s, 1);
  PhaserName p = s.tasks.at(1).env.at("p");
  EXPECT_EQ(s.phasers.at(p).at(1), 0u);
}

TEST(SemanticsTest, RegInheritsRegistrarPhase) {
  State s = initial_state(
      {new_phaser("p"), adv("p"), new_tid("t"), reg("t", "p")});
  s = step_task(s, 1);  // newPhaser
  s = step_task(s, 1);  // adv -> root at phase 1
  s = step_task(s, 1);  // newTid
  s = step_task(s, 1);  // reg
  TaskName child = s.tasks.at(1).env.at("t");
  PhaserName p = s.tasks.at(1).env.at("p");
  EXPECT_EQ(s.phasers.at(p).at(child), 1u);
}

TEST(SemanticsTest, DoubleRegIsStuck) {
  State s = initial_state(
      {new_phaser("p"), new_tid("t"), reg("t", "p"), reg("t", "p")});
  s = step_task(s, 1);
  s = step_task(s, 1);
  s = step_task(s, 1);
  EXPECT_EQ(task_status(s, 1), TaskStatus::kStuck);
}

TEST(SemanticsTest, DeregRemovesMembership) {
  State s = initial_state({new_phaser("p"), dereg("p"), adv("p")});
  s = step_task(s, 1);
  s = step_task(s, 1);
  PhaserName p = s.tasks.at(1).env.at("p");
  EXPECT_TRUE(s.phasers.at(p).empty());
  // adv on a phaser we are no longer registered with: stuck.
  EXPECT_EQ(task_status(s, 1), TaskStatus::kStuck);
}

TEST(SemanticsTest, AwaitSatisfiedWhenAllMembersReachPhase) {
  State s = initial_state({new_phaser("p"), adv("p"), await("p")});
  s = step_task(s, 1);
  s = step_task(s, 1);
  // Sole member at phase 1 awaiting phase 1: satisfied.
  EXPECT_EQ(task_status(s, 1), TaskStatus::kRunnable);
  s = step_task(s, 1);
  EXPECT_EQ(task_status(s, 1), TaskStatus::kTerminated);
}

TEST(SemanticsTest, AwaitBlocksOnLaggingMember) {
  State s = initial_state({new_phaser("p"), new_tid("t"), reg("t", "p"),
                           fork("t", {}), adv("p"), await("p")});
  for (int i = 0; i < 5; ++i) s = step_task(s, 1);
  // Child (at phase 0) never advances: the root is blocked.
  EXPECT_EQ(task_status(s, 1), TaskStatus::kBlocked);
}

TEST(SemanticsTest, LoopHasTwoOutcomes) {
  State s = initial_state({loop({skip()})});
  auto steps = enabled_steps(s);
  ASSERT_EQ(steps.size(), 2u);
  // [i-loop]: body prepended, loop kept.
  State iter = apply_step(s, Step{1, Step::Kind::kLoopIter});
  EXPECT_EQ(iter.tasks.at(1).remaining.size(), 2u);
  EXPECT_EQ(iter.tasks.at(1).remaining[0].op, Op::kSkip);
  EXPECT_EQ(iter.tasks.at(1).remaining[1].op, Op::kLoop);
  // [e-loop]: loop dropped.
  State exit = apply_step(s, Step{1, Step::Kind::kLoopExit});
  EXPECT_TRUE(exit.tasks.at(1).remaining.empty());
}

TEST(SemanticsTest, RunWithDeterministicScheduler) {
  State s = initial_state({new_phaser("p"), adv("p"), await("p"), skip()});
  State final = run(std::move(s), 100,
                    [](const State&, const std::vector<Step>&) { return 0u; });
  EXPECT_EQ(task_status(final, 1), TaskStatus::kTerminated);
}

// --- deadlock definitions -------------------------------------------------------

/// Hand-builds the deadlocked state of Example 4.1 (3 workers + driver).
State example_4_1_state() {
  State s;
  // pc = phaser 1, pb = phaser 2; workers 1..3, driver 4.
  s.phasers[1] = PhaserState{{1, 1}, {2, 1}, {3, 1}, {4, 0}};
  s.phasers[2] = PhaserState{{1, 0}, {2, 0}, {3, 0}, {4, 1}};
  Env env{{"pc", 1}, {"pb", 2}};
  for (TaskName t : {1u, 2u, 3u}) {
    s.tasks[t] = TaskState{{await("pc")}, env};
  }
  s.tasks[4] = TaskState{{await("pb")}, env};
  s.next_task = 5;
  s.next_phaser = 3;
  return s;
}

TEST(DeadlockDefTest, Example41IsTotallyDeadlocked) {
  State s = example_4_1_state();
  EXPECT_TRUE(is_totally_deadlocked(s));
  EXPECT_TRUE(is_deadlocked(s));
  EXPECT_EQ(deadlocked_tasks(s), (std::vector<TaskName>{1, 2, 3, 4}));
}

TEST(DeadlockDefTest, ExtraRunnableTaskMakesItDeadlockedNotTotally) {
  State s = example_4_1_state();
  s.tasks[5] = TaskState{{skip()}, {}};
  EXPECT_FALSE(is_totally_deadlocked(s));  // t5 can still reduce
  EXPECT_TRUE(is_deadlocked(s));           // Definition 3.2
  EXPECT_EQ(deadlocked_tasks(s).size(), 4u);
}

TEST(DeadlockDefTest, BlockedOnExternalTaskIsNotDeadlock) {
  // A task blocked behind a *runnable* member is waiting, not deadlocked.
  State s;
  s.phasers[1] = PhaserState{{1, 1}, {2, 0}};
  s.tasks[1] = TaskState{{await("p")}, Env{{"p", 1}}};
  s.tasks[2] = TaskState{{adv("p")}, Env{{"p", 1}}};  // will arrive
  s.next_task = 3;
  s.next_phaser = 2;
  EXPECT_FALSE(is_deadlocked(s));
}

TEST(DeadlockDefTest, PhiMatchesDefinition41) {
  State s = example_4_1_state();
  auto statuses = phi(s);
  ASSERT_EQ(statuses.size(), 4u);
  // Worker 1: waits (pc,1); registered pc@1 and pb@0.
  const BlockedStatus& w = statuses[0];
  EXPECT_EQ(w.task, 1u);
  ASSERT_EQ(w.waits.size(), 1u);
  EXPECT_EQ(w.waits[0], (Resource{1, 1}));
  ASSERT_EQ(w.registered.size(), 2u);
  EXPECT_EQ(w.registered[0], (RegEntry{1, 1}));
  EXPECT_EQ(w.registered[1], (RegEntry{2, 0}));
  // Driver: waits (pb,1); registered pc@0, pb@1.
  const BlockedStatus& d = statuses[3];
  EXPECT_EQ(d.task, 4u);
  EXPECT_EQ(d.waits[0], (Resource{2, 1}));
}

// --- the running example (Figure 3) ---------------------------------------------

/// Figure 3 with bounded loops: the driver forks `workers` tasks registered
/// on pc and pb; each worker does `iters` barrier double-steps then
/// deregisters from both; the driver then joins via pb. `fixed` inserts the
/// §2.1 fix (driver deregisters from pc before the join).
Seq figure3_program(int workers, int iters, bool fixed) {
  Seq program{new_phaser("pc"), new_phaser("pb")};
  for (int w = 0; w < workers; ++w) {
    std::string t = "t" + std::to_string(w);
    Seq body;
    for (int j = 0; j < iters; ++j) {
      body.push_back(skip());
      body.push_back(adv("pc"));
      body.push_back(await("pc"));
      body.push_back(skip());
      body.push_back(adv("pc"));
      body.push_back(await("pc"));
    }
    body.push_back(dereg("pc"));
    body.push_back(dereg("pb"));
    program.push_back(new_tid(t));
    program.push_back(reg(t, "pc"));
    program.push_back(reg(t, "pb"));
    program.push_back(fork(t, std::move(body)));
  }
  if (fixed) program.push_back(dereg("pc"));
  program.push_back(adv("pb"));
  program.push_back(await("pb"));
  program.push_back(skip());
  return program;
}

TEST(Figure3Test, BuggyProgramReachesDeadlock) {
  ExploreResult result =
      explore(figure3_program(2, 1, /*fixed=*/false), {20000, 64});
  EXPECT_GT(result.deadlocked_states, 0u);
  // Inspect one example: the driver must be among the deadlocked tasks.
  ASSERT_FALSE(result.deadlock_examples.empty());
  auto tasks = deadlocked_tasks(result.deadlock_examples[0]);
  EXPECT_GE(tasks.size(), 2u);
}

TEST(Figure3Test, FixedProgramNeverDeadlocks) {
  ExploreResult result =
      explore(figure3_program(2, 1, /*fixed=*/true), {40000, 80});
  EXPECT_EQ(result.deadlocked_states, 0u);
  EXPECT_GT(result.terminal_states, 0u);
}

TEST(Figure3Test, PrettyPrinterShowsStructure) {
  std::string text = to_string(figure3_program(1, 1, false));
  EXPECT_NE(text.find("newPhaser"), std::string::npos);
  EXPECT_NE(text.find("fork(t0)"), std::string::npos);
  EXPECT_NE(text.find("await(pc)"), std::string::npos);
}

// --- explorer ---------------------------------------------------------------------

TEST(ExplorerTest, CountsTerminalStates) {
  ExploreResult result = explore({skip(), skip()});
  EXPECT_EQ(result.states_visited, 3u);  // 2 skips = 3 states on one path
  EXPECT_EQ(result.terminal_states, 1u);
  EXPECT_FALSE(result.truncated);
}

TEST(ExplorerTest, LoopOverSkipIsAFiniteStateSpace) {
  // loop { skip } folds back into itself: memoisation must terminate the
  // exploration without hitting any bound.
  ExploreResult result = explore({loop({skip()})}, {1000, 10});
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.states_visited, 3u);  // loop | skip;loop | end
}

TEST(ExplorerTest, LoopTruncatesAtDepth) {
  // loop { adv(p) } grows the phase forever: every unfolding is a fresh
  // state, so the depth bound must kick in.
  ExploreResult result = explore({new_phaser("p"), loop({adv("p")})}, {1000, 10});
  EXPECT_TRUE(result.truncated);
}

TEST(ExplorerTest, InterleavingsAreMerged) {
  // Two independent tasks with 1 skip each: the diamond has 4 states, not 5.
  Seq program{new_tid("a"), fork("a", {skip()}), skip()};
  ExploreResult result = explore(program);
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.states_visited, 0u);
  EXPECT_EQ(result.deadlocked_states, 0u);
}

// --- generator ----------------------------------------------------------------------

TEST(GeneratorTest, DeterministicPerSeed) {
  util::Xoshiro256 a(5), b(5);
  EXPECT_EQ(random_program(a), random_program(b));
}

TEST(GeneratorTest, ProgramsAreWellFormedUnderExploration) {
  // Generated programs must never reach a stuck (ill-formed) task.
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 10; ++i) {
    Seq program = random_program(rng);
    explore(program, {3000, 40}, [&](const State& s) {
      for (const auto& [name, task] : s.tasks) {
        EXPECT_NE(task_status(s, name), TaskStatus::kStuck)
            << "program:\n" << to_string(program) << "state:\n" << s.to_string();
      }
    });
  }
}

TEST(GeneratorTest, ProducesBothDeadlockingAndCleanPrograms) {
  // Single-phaser programs can never deadlock (phases are totally ordered),
  // so ask for 2-3 phasers; empirically ~25-35% of these programs reach a
  // deadlocked state.
  util::Xoshiro256 rng(2024);
  GenConfig config;
  config.min_phasers = 2;
  config.max_phasers = 3;
  int deadlocking = 0, clean = 0;
  for (int i = 0; i < 30; ++i) {
    ExploreResult result = explore(random_program(rng, config), {3000, 40});
    if (result.deadlocked_states > 0) {
      ++deadlocking;
    } else {
      ++clean;
    }
  }
  EXPECT_GT(deadlocking, 0);
  EXPECT_GT(clean, 0);
}

TEST(StateTest, KeyDistinguishesStates) {
  State a = initial_state({skip()});
  State b = initial_state({adv("p")});
  EXPECT_NE(a.key(), b.key());
  State a2 = initial_state({skip()});
  EXPECT_EQ(a.key(), a2.key());
}

}  // namespace
}  // namespace armus::pl
