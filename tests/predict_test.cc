// Tests for predictive offline verification (src/predict/, docs/PREDICT.md):
// the causal model's edges/pinning/slack, and the headline property — on a
// recorded run whose *observed* schedule never exhibits a deadlock, the cut
// search finds the latent cycle, and its witness schedule replays to that
// cycle through the ordinary OfflineVerifier. Plus the soundness side:
// correctly synchronised runs yield no predictions, and observed cycles are
// re-found (novel == false), never lost.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/verifier.h"
#include "predict/causal.h"
#include "predict/predictor.h"
#include "trace/recorder.h"
#include "trace/replayer.h"

namespace armus::predict {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "armus_predict_test_" + name + "_" +
         std::to_string(::getpid()) + ".trace";
}

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

VerifierConfig recording_config(const std::string& trace_path) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;
  config.on_deadlock = [](const DeadlockReport&) {};
  config.observer = std::make_shared<trace::Recorder>(
      trace::Recorder::Options{trace_path, {}});
  return config;
}

/// The late-phased-join schedule: t1 and t2 register on both phasers but
/// are never blocked *at the same time* — t1's wait completes before t2
/// even publishes. Every observed scan sees one blocked task with no
/// impeders, so the live run (and a plain replay) is deadlock-free; yet a
/// schedule where t2 publishes before t1's wait completes deadlocks.
std::string record_latent_deadlock(const std::string& name) {
  std::string path = temp_path(name);
  Verifier verifier(recording_config(path));
  verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  verifier.scan_now();            // only t1 blocked: no impeders, no cycle
  verifier.after_unblock(1);      // free release — nothing impeded (1,1)
  verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
  verifier.scan_now();            // only t2 blocked: no cycle either
  verifier.after_unblock(2);
  verifier.scan_now();
  EXPECT_TRUE(verifier.reported().empty());
  return path;
}

// --- CausalModel ---------------------------------------------------------

TEST(CausalModelTest, ProgramOrderAndReleaseEdges) {
  // t2 impedes (1,1) at phase 0, then advances (re-registration at phase
  // 1), which releases t1. The unblock must depend on both t1's own
  // BLOCKED (program order) and t2's advance (release edge).
  std::vector<trace::Record> records(4);
  records[0].type = trace::RecordType::kTaskRegistered;
  records[0].task = 2;
  records[0].phaser = 1;
  records[0].phase = 0;
  records[1].type = trace::RecordType::kBlocked;
  records[1].status = status(1, {{1, 1}}, {{1, 1}});
  records[2].type = trace::RecordType::kTaskRegistered;
  records[2].task = 2;
  records[2].phaser = 1;
  records[2].phase = 1;
  records[3].type = trace::RecordType::kUnblocked;
  records[3].task = 1;
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].at_ns = 1000 * (i + 1);
  }

  CausalModel model(records);
  ASSERT_EQ(model.events().size(), 4u);
  EXPECT_EQ(model.pinned_events(), 0u);
  EXPECT_GE(model.release_edges(), 1u);
  const Event& unblock = model.events()[3];
  EXPECT_EQ(unblock.preds, (std::vector<std::uint32_t>{1, 2}));

  ASSERT_EQ(model.intervals().size(), 1u);
  EXPECT_EQ(model.intervals()[0].task, 1u);
  EXPECT_EQ(model.intervals()[0].blocked, 1u);
  EXPECT_EQ(model.intervals()[0].end, std::optional<std::uint32_t>(3));

  // The advance (event 2) belongs to the unblock's causal past; t2's
  // initial registration reaches it transitively via program order.
  std::vector<bool> past = model.downset(3);
  EXPECT_TRUE(past[0]);
  EXPECT_TRUE(past[1]);
  EXPECT_TRUE(past[2]);

  // The advance has slack (it could have happened before t1 blocked); the
  // unblock cannot move above the advance.
  auto [alo, ahi] = model.slack(2);
  EXPECT_LT(alo, 2u);
  auto [ulo, uhi] = model.slack(3);
  EXPECT_EQ(ulo, 3u);
  EXPECT_EQ(uhi, 3u);
}

TEST(CausalModelTest, UnexplainedReleaseIsPinned) {
  // t1 unblocks while t2 still impedes (1,1): a rescue/interrupt the trace
  // cannot explain. The unblock must be pinned — its downset is the whole
  // prefix — so no reordering can move anything past it.
  std::vector<trace::Record> records(3);
  records[0].type = trace::RecordType::kTaskRegistered;
  records[0].task = 2;
  records[0].phaser = 1;
  records[0].phase = 0;
  records[1].type = trace::RecordType::kBlocked;
  records[1].status = status(1, {{1, 1}}, {{1, 1}});
  records[2].type = trace::RecordType::kUnblocked;
  records[2].task = 1;
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].at_ns = 1000 * (i + 1);
  }

  CausalModel model(records);
  EXPECT_EQ(model.pinned_events(), 1u);
  EXPECT_TRUE(model.events()[2].pinned);
  std::vector<bool> past = model.downset(2);
  EXPECT_TRUE(past[0] && past[1] && past[2]);
  auto [lo, hi] = model.slack(2);
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 2u);
}

// --- The headline property ----------------------------------------------

TEST(PredictorTest, FindsLatentCycleTheObservedScheduleMisses) {
  std::string path = record_latent_deadlock("latent");

  trace::MergedTrace merged({path});

  // The observed schedule is clean: plain verify reports nothing.
  {
    trace::OfflineVerifier verifier({});
    trace::OfflineVerifier::Result plain = verifier.run(merged);
    EXPECT_TRUE(plain.recorded.empty());
    EXPECT_TRUE(plain.replayed.empty());
  }

  Predictor predictor({});
  Predictor::Result result = predictor.run(merged);
  EXPECT_TRUE(result.observed.empty());
  EXPECT_TRUE(result.replayed.empty());
  ASSERT_EQ(result.predictions.size(), 1u);
  EXPECT_TRUE(result.predictions[0].novel);
  EXPECT_EQ(result.predictions[0].report.tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(result.novel_count(), 1u);
  EXPECT_GE(result.anchors_tried, 2u);
  EXPECT_FALSE(result.anchors_capped);

  // The witness is a replayable schedule reaching the predicted cycle:
  // feed it through the ordinary OfflineVerifier and the cycle appears.
  std::string witness_path = temp_path("latent_witness");
  write_witness(witness_path, result.predictions[0]);
  trace::OfflineVerifier verifier({});
  trace::OfflineVerifier::Result replayed =
      verifier.run(trace::MergedTrace({witness_path}));
  ASSERT_EQ(replayed.replayed.size(), 1u);
  EXPECT_EQ(replayed.replayed[0].fingerprint(),
            result.predictions[0].report.fingerprint());
  std::remove(path.c_str());
  std::remove(witness_path.c_str());
}

TEST(PredictorTest, EveryModelFindsTheLatentCycle) {
  for (GraphModel model : {GraphModel::kWfg, GraphModel::kSg, GraphModel::kGrg,
                           GraphModel::kAuto}) {
    std::string path = record_latent_deadlock("latent_" + to_string(model));
    Predictor::Options options;
    options.model = model;
    Predictor predictor(options);
    Predictor::Result result = predictor.run(trace::MergedTrace({path}));
    ASSERT_EQ(result.predictions.size(), 1u) << to_string(model);
    EXPECT_EQ(result.predictions[0].report.tasks,
              (std::vector<TaskId>{1, 2}))
        << to_string(model);
    std::remove(path.c_str());
  }
}

// --- Soundness side ------------------------------------------------------

TEST(PredictorTest, ReFindsObservedCycleAsNonNovel) {
  // The classic planted cycle (live run reports it, replay reproduces it):
  // the cut search must reach that same state and mark it non-novel —
  // corroboration, not double-reporting.
  std::string path = temp_path("observed");
  {
    Verifier verifier(recording_config(path));
    verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
    verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
    verifier.scan_now();
    for (TaskId task : {1, 2}) verifier.after_unblock(task);
    verifier.scan_now();
    ASSERT_EQ(verifier.reported().size(), 1u);
  }
  Predictor predictor({});
  Predictor::Result result = predictor.run(trace::MergedTrace({path}));
  ASSERT_EQ(result.observed.size(), 1u);
  ASSERT_EQ(result.predictions.size(), 1u);
  EXPECT_FALSE(result.predictions[0].novel);
  EXPECT_EQ(result.predictions[0].report.fingerprint(),
            result.observed[0].fingerprint());
  EXPECT_EQ(result.novel_count(), 0u);
  std::remove(path.c_str());
}

TEST(PredictorTest, NoPredictionOnCorrectlySynchronisedRun) {
  // A proper barrier crossing: t2 impedes t1's wait, then advances, then
  // t1 releases (explained). No reordering of this run deadlocks, so the
  // cut search must stay silent.
  std::string path = temp_path("correct");
  {
    Verifier verifier(recording_config(path));
    verifier.registry().set_entry(2, 1, 0);
    verifier.before_block(status(1, {{1, 1}}, {{1, 1}}));
    verifier.scan_now();
    verifier.registry().set_entry(2, 1, 1);  // t2 signals: phase 0 -> 1
    verifier.after_unblock(1);
    verifier.scan_now();
    EXPECT_TRUE(verifier.reported().empty());
  }
  Predictor predictor({});
  Predictor::Result result = predictor.run(trace::MergedTrace({path}));
  EXPECT_TRUE(result.observed.empty());
  EXPECT_TRUE(result.replayed.empty());
  EXPECT_TRUE(result.predictions.empty());
  std::remove(path.c_str());
}

TEST(PredictorTest, AnchorCapBoundsTheSearch) {
  std::string path = record_latent_deadlock("capped");
  Predictor::Options options;
  options.max_anchors = 1;
  Predictor predictor(options);
  Predictor::Result result = predictor.run(trace::MergedTrace({path}));
  EXPECT_EQ(result.anchors_tried, 1u);
  EXPECT_TRUE(result.anchors_capped);
  // Anchor 1 (t1's interval) already reaches the cut — capping trades
  // completeness, not soundness.
  ASSERT_EQ(result.predictions.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace armus::predict
