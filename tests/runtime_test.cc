// Runtime-layer tests: tasks, finish blocks, X10 clocks, Java-style
// barriers, clocked variables and the verified mutex — including end-to-end
// reproduction of the paper's running example (Figures 1 and 2) under both
// detection and avoidance.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/barriers.h"
#include "runtime/clock.h"
#include "runtime/clocked_var.h"
#include "runtime/finish.h"
#include "runtime/jphaser.h"
#include "runtime/task.h"
#include "runtime/verified_mutex.h"

namespace armus::rt {
namespace {

using namespace std::chrono_literals;

/// A detection-mode verifier with a fast scan period.
VerifierConfig detection_config(std::chrono::milliseconds period = 5ms) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = period;
  config.on_deadlock = [](const DeadlockReport&) {};  // silence default log
  return config;
}

VerifierConfig avoidance_config() {
  VerifierConfig config;
  config.mode = VerifyMode::kAvoidance;
  return config;
}

// --- tasks -------------------------------------------------------------------

TEST(TaskTest, SpawnRunsBodyOnFreshTask) {
  TaskId parent = current_task();
  std::atomic<TaskId> child_id{0};
  Task t = spawn([&] { child_id = current_task(); });
  t.join();
  EXPECT_NE(child_id.load(), 0u);
  EXPECT_NE(child_id.load(), parent);
}

TEST(TaskTest, JoinRethrowsChildException) {
  Task t = spawn([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(t.join(), std::runtime_error);
}

TEST(TaskTest, SpawnAsGangLaunch) {
  // The explicit PL pattern: allocate ids, register everyone on the shared
  // phaser, then fork. Even the first-started task cannot advance the clock
  // past a sibling, because all siblings are already members.
  auto p = ph::Phaser::create(nullptr);
  constexpr int kGang = 6;
  std::vector<TaskId> ids;
  for (int i = 0; i < kGang; ++i) {
    TaskId id = fresh_task_id();
    p->register_task(id, 0);
    ids.push_back(id);
  }
  std::atomic<int> arrived{0};
  std::atomic<bool> skew{false};
  std::vector<Task> gang;
  for (int i = 0; i < kGang; ++i) {
    gang.push_back(spawn_as(ids[static_cast<std::size_t>(i)], [&] {
      TaskId self = current_task();
      ++arrived;
      p->advance(self);
      if (arrived.load() < kGang) skew = true;  // barrier must gate everyone
      p->arrive_and_deregister(self);
    }));
  }
  for (Task& t : gang) t.join();
  EXPECT_FALSE(skew.load());
  EXPECT_EQ(arrived.load(), kGang);
}

TEST(TaskTest, SpawnAsUsesTheGivenId) {
  TaskId id = fresh_task_id();
  std::atomic<TaskId> seen{kInvalidTask};
  Task t = spawn_as(id, [&] { seen = current_task(); });
  t.join();
  EXPECT_EQ(seen.load(), id);
  EXPECT_EQ(t.id(), id);
}

TEST(TaskTest, ForeignThreadGetsContextLazily) {
  std::atomic<TaskId> a{0}, b{0};
  std::thread t1([&] { a = current_task(); });
  std::thread t2([&] { b = current_task(); });
  t1.join();
  t2.join();
  EXPECT_NE(a.load(), b.load());
}

// --- finish -------------------------------------------------------------------

TEST(FinishTest, WaitsForAllChildren) {
  std::atomic<int> done{0};
  Finish f(nullptr);
  for (int i = 0; i < 8; ++i) {
    f.spawn([&] {
      std::this_thread::sleep_for(2ms);
      ++done;
    });
  }
  f.wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(FinishTest, NestedFinish) {
  std::atomic<int> done{0};
  Finish outer(nullptr);
  outer.spawn([&] {
    Finish inner(nullptr);
    inner.spawn([&] { ++done; });
    inner.spawn([&] { ++done; });
    inner.wait();
    ++done;
  });
  outer.wait();
  EXPECT_EQ(done.load(), 3);
}

TEST(FinishTest, ChildExceptionPropagates) {
  Finish f(nullptr);
  f.spawn([] { throw std::runtime_error("child failed"); });
  EXPECT_THROW(f.wait(), std::runtime_error);
}

TEST(FinishTest, WaitIsIdempotent) {
  Finish f(nullptr);
  f.spawn([] {});
  f.wait();
  f.wait();
}

// --- the running example (Figure 1) under detection ---------------------------

/// Builds the deadlocking iterative-averaging program of Figure 1: I worker
/// tasks advance a clock twice per iteration; the parent is registered with
/// the clock (implicitly, by creating it) but never advances, then blocks
/// at the finish.
void run_figure1(Verifier* verifier, int workers, int iters, bool fixed) {
  set_default_verifier(verifier);
  std::vector<double> a(static_cast<std::size_t>(workers) + 2, 1.0);

  Clock c = Clock::make(verifier);
  Finish f(verifier);
  for (int i = 1; i <= workers; ++i) {
    async_clocked(f, {c}, [&, i] {
      for (int j = 0; j < iters; ++j) {
        double l = a[static_cast<std::size_t>(i) - 1];
        double r = a[static_cast<std::size_t>(i) + 1];
        c.advance();
        a[static_cast<std::size_t>(i)] = (l + r) / 2;
        c.advance();
      }
    });
  }
  if (fixed) c.drop();  // the one-line fix from §2.1
  try {
    f.wait();
  } catch (const DeadlockAvoidedError&) {
    // Avoidance interrupted the parent's join: recover exactly as §2.1
    // prescribes — deregister from the clock — and complete the join. The
    // workers' own interrupts (if any) surface as a child exception here.
    if (c.is_registered()) c.drop();
    try {
      f.wait();
    } catch (const DeadlockAvoidedError&) {
      // A worker was interrupted too; that is fine.
    }
    set_default_verifier(nullptr);
    throw;
  }
  set_default_verifier(nullptr);
}

TEST(Figure1Test, FixedProgramCompletes) {
  Verifier verifier(detection_config());
  run_figure1(&verifier, 4, 3, /*fixed=*/true);
  EXPECT_TRUE(verifier.reported().empty());
}

TEST(Figure1Test, DetectionReportsTheDeadlock) {
  // The deadlocked program never finishes on its own; the detection
  // callback doubles as the rescue: it deregisters the parent from the
  // clock (exactly the fix), unblocking the workers.
  std::atomic<int> reports{0};
  Clock c;
  TaskId parent = current_task();

  VerifierConfig config = detection_config();
  config.on_deadlock = [&](const DeadlockReport& report) {
    ++reports;
    EXPECT_GE(report.tasks.size(), 2u);  // parent + workers
    if (c.underlying()->is_registered(parent)) {
      c.underlying()->deregister(parent);
    }
  };
  Verifier verifier(config);
  set_default_verifier(&verifier);

  c = Clock::make(&verifier);
  Finish f(&verifier);
  for (int i = 1; i <= 3; ++i) {
    async_clocked(f, {c}, [&] {
      c.advance();
      c.advance();
    });
  }
  f.wait();  // unblocked once the callback removes the parent
  set_default_verifier(nullptr);
  EXPECT_GE(reports.load(), 1);
  // The report should implicate the parent task.
  auto reported = verifier.reported();
  ASSERT_FALSE(reported.empty());
  bool parent_in_report = false;
  for (TaskId t : reported[0].tasks) parent_in_report |= (t == parent);
  EXPECT_TRUE(parent_in_report);
}

TEST(Figure1Test, AvoidanceInterruptsInsteadOfDeadlocking) {
  Verifier verifier(avoidance_config());
  // Either the parent's finish-wait or a worker's advance is interrupted —
  // scheduling decides which blocks last — but the program must terminate
  // and at least one interrupt must fire.
  bool interrupted = false;
  try {
    run_figure1(&verifier, 3, 2, /*fixed=*/false);
  } catch (const DeadlockAvoidedError&) {
    interrupted = true;
  }
  EXPECT_GE(verifier.stats().avoidance_interrupts, 1u);
  // Whichever side survived, the avoidance policy (deregistering the
  // blocked-side from the clock) must have allowed every task to finish:
  // nothing is left in the blocked set.
  EXPECT_EQ(verifier.state().blocked_count(), 0u);
  (void)interrupted;
}

TEST(Figure1Test, AvoidanceCleanRunRaisesNothing) {
  Verifier verifier(avoidance_config());
  run_figure1(&verifier, 4, 3, /*fixed=*/true);
  EXPECT_EQ(verifier.stats().avoidance_interrupts, 0u);
}

// --- clocks -------------------------------------------------------------------

TEST(ClockTest, LockstepIteration) {
  Verifier verifier(detection_config(50ms));
  set_default_verifier(&verifier);
  constexpr int kWorkers = 6, kIters = 20;
  std::vector<int> progress(kWorkers, 0);
  std::atomic<bool> skew{false};

  Clock c = Clock::make(&verifier);
  Finish f(&verifier);
  for (int w = 0; w < kWorkers; ++w) {
    async_clocked(f, {c}, [&, w] {
      for (int j = 0; j < kIters; ++j) {
        progress[static_cast<std::size_t>(w)] = j;
        c.advance();
        // After the barrier every worker must have published iteration j.
        for (int other = 0; other < kWorkers; ++other) {
          if (progress[static_cast<std::size_t>(other)] < j) skew = true;
        }
        c.advance();
      }
    });
  }
  c.drop();
  f.wait();
  set_default_verifier(nullptr);
  EXPECT_FALSE(skew.load());
}

TEST(ClockTest, SplitPhaseResume) {
  Clock c = Clock::make(nullptr);
  Finish f(nullptr);
  std::atomic<int> overlapped{0};
  async_clocked(f, {c}, [&] {
    c.resume();       // signal early
    ++overlapped;     // work between signal and wait
    c.advance();      // completes the same step (no double arrival)
    EXPECT_EQ(c.phase(), 1u);
  });
  async_clocked(f, {c}, [&] { c.advance(); });
  c.drop();
  f.wait();
  EXPECT_EQ(overlapped.load(), 1);
}

TEST(ClockTest, DropIsIdempotent) {
  Clock c = Clock::make(nullptr);
  c.drop();
  c.drop();
  EXPECT_FALSE(c.is_registered());
}

TEST(ClockTest, TerminatedTasksAutoDrop) {
  // A worker that returns without dropping must not impede the others
  // (X10/HJ termination semantics).
  Clock c = Clock::make(nullptr);
  Finish f(nullptr);
  async_clocked(f, {c}, [&] { /* returns immediately, no drop */ });
  f.wait();
  c.advance();  // would hang if the dead worker still held phase 0
}

// --- Java phaser (Figure 2) -----------------------------------------------------

TEST(Figure2Test, JavaPhaserVersionCompletesWithFix) {
  Verifier verifier(detection_config());
  constexpr int kWorkers = 4, kIters = 3;
  std::vector<double> a(kWorkers + 2, 1.0);

  JPhaser c(1, &verifier);  // parent's party (Figure 2 line 1)
  JPhaser b(1, &verifier);
  c.bind_current();
  b.bind_current();

  std::vector<Task> threads;
  for (int i = 1; i <= kWorkers; ++i) {
    c.register_party();
    b.register_party();
    threads.push_back(spawn([&, i] {
      c.bind_current();  // the JArmus.register annotation
      b.bind_current();
      for (int j = 0; j < kIters; ++j) {
        double l = a[static_cast<std::size_t>(i) - 1];
        double r = a[static_cast<std::size_t>(i) + 1];
        c.arrive_and_await_advance();
        a[static_cast<std::size_t>(i)] = (l + r) / 2;
        c.arrive_and_await_advance();
      }
      c.arrive_and_deregister();
      b.arrive_and_deregister();
    }, &verifier));
  }
  c.arrive_and_deregister();  // the fix: parent leaves the cyclic barrier
  b.arrive_and_await_advance();
  for (Task& t : threads) t.join();
  EXPECT_TRUE(verifier.reported().empty());
}

TEST(Figure2Test, UnfixedJavaVersionIsDetected) {
  std::atomic<int> reports{0};
  TaskId parent = current_task();

  VerifierConfig config = detection_config();
  Verifier* vptr = nullptr;
  std::shared_ptr<ph::Phaser> cyclic;
  config.on_deadlock = [&](const DeadlockReport&) {
    ++reports;
    // Rescue: deregister the parent from the cyclic phaser so the test can
    // finish (the fix applied at runtime).
    if (cyclic && cyclic->is_registered(parent)) cyclic->deregister(parent);
  };
  Verifier verifier(config);
  vptr = &verifier;

  JPhaser c(1, vptr);
  JPhaser b(1, vptr);
  c.bind_current();
  b.bind_current();
  cyclic = c.underlying();

  std::vector<Task> threads;
  for (int i = 0; i < 3; ++i) {
    c.register_party();
    b.register_party();
    threads.push_back(spawn([&] {
      c.bind_current();
      b.bind_current();
      c.arrive_and_await_advance();  // deadlock: parent never arrives at c
      c.arrive_and_deregister();
      b.arrive_and_deregister();
    }, vptr));
  }
  b.arrive_and_await_advance();  // parent blocks at the join phaser
  for (Task& t : threads) t.join();
  EXPECT_GE(reports.load(), 1);
}

TEST(JPhaserTest, UnboundPartyHoldsTheBarrier) {
  JPhaser p(2, nullptr);
  p.bind_current();
  EXPECT_EQ(p.unbound_parties(), 1u);
  p.arrive();
  EXPECT_EQ(p.phase(), 0u);  // the unbound party has not arrived
}

TEST(JPhaserTest, BindWithoutBookingThrows) {
  JPhaser p(0, nullptr);
  EXPECT_THROW(p.bind_current(), ph::PhaserError);
}

TEST(JPhaserTest, AwaitAdvanceObservesPhaseChange) {
  JPhaser p(1, nullptr);
  p.bind_current();
  std::atomic<bool> woke{false};
  Task waiter = spawn([&] {
    p.await_advance(0);
    woke = true;
  }, nullptr);
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(woke.load());
  p.arrive();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

// --- CyclicBarrier -------------------------------------------------------------

TEST(CyclicBarrierTest, SynchronisesParties) {
  constexpr int kParties = 5, kSteps = 10;
  CyclicBarrier barrier(kParties, nullptr);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};
  std::vector<Task> tasks;
  for (int i = 0; i < kParties; ++i) {
    // Parent-side registration: no thread can race through the barrier
    // while others are still registering.
    tasks.push_back(spawn_with(
        [&](TaskId child) { barrier.register_task(child); },
        [&] {
          for (int s = 0; s < kSteps; ++s) {
            ++counter;
            barrier.await();
            if (counter.load() < kParties * (s + 1)) failed = true;
            barrier.await();
          }
        },
        nullptr));
  }
  for (Task& t : tasks) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kParties * kSteps);
}

TEST(CyclicBarrierTest, AwaitWithoutRegistrationThrows) {
  CyclicBarrier barrier(2, nullptr);
  EXPECT_THROW(barrier.await(), ph::PhaserError);
}

TEST(CyclicBarrierTest, OverRegistrationThrows) {
  CyclicBarrier barrier(1, nullptr);
  barrier.register_current();
  Task t = spawn([&] {
    EXPECT_THROW(barrier.register_current(), ph::PhaserError);
  }, nullptr);
  t.join();
}

// --- CountDownLatch --------------------------------------------------------------

TEST(CountDownLatchTest, ReleasesAfterAllContributions) {
  CountDownLatch latch(3, nullptr);
  EXPECT_FALSE(latch.ready());
  std::vector<Task> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back(spawn([&] {
      latch.register_current();
      std::this_thread::sleep_for(5ms);
      latch.count_down();
    }, nullptr));
  }
  latch.wait();
  EXPECT_TRUE(latch.ready());
  for (Task& t : tasks) t.join();
}

TEST(CountDownLatchTest, GuardPreventsPrematureRelease) {
  // No contributor registered yet: the latch must hold.
  CountDownLatch latch(2, nullptr);
  EXPECT_FALSE(latch.ready());
  Task contributor = spawn([&] {
    latch.register_current();
    latch.count_down();
  }, nullptr);
  contributor.join();
  EXPECT_FALSE(latch.ready());  // 1 of 2 contributions
  Task second = spawn([&] {
    latch.register_current();
    latch.count_down();
  }, nullptr);
  second.join();
  EXPECT_TRUE(latch.ready());
  latch.wait();  // immediate
}

// --- ClockedVar -----------------------------------------------------------------

TEST(ClockedVarTest, SingleWriteActsAsFuture) {
  ClockedVar<int> future(nullptr);
  // The parent registers the writer before the fork, so the reader can
  // never slip past an "empty" phaser (the PL reg-before-fork pattern).
  Task producer = spawn_with(
      [&](TaskId child) { future.register_writer(child); },
      [&] {
        std::this_thread::sleep_for(5ms);
        future.put(42);
        future.deregister();
      },
      nullptr);
  EXPECT_EQ(future.get(1), 42);
  producer.join();
}

TEST(ClockedVarTest, StreamsValuesPerPhase) {
  ClockedVar<int> stream(nullptr);
  constexpr int kItems = 20;
  Task producer = spawn_with(
      [&](TaskId child) { stream.register_writer(child); },
      [&] {
        for (int i = 0; i < kItems; ++i) stream.put(i * i);
        stream.deregister();
      },
      nullptr);
  for (Phase n = 1; n <= kItems; ++n) {
    EXPECT_EQ(stream.get(n), static_cast<int>((n - 1) * (n - 1)));
  }
  producer.join();
}

TEST(ClockedVarTest, MissingValueThrows) {
  ClockedVar<int> v(nullptr);
  // Phase 1 is trivially observed (no writers): but no value exists.
  EXPECT_THROW(v.get(1), std::out_of_range);
}

TEST(ClockedVarTest, PruneDropsOldPhases) {
  ClockedVar<int> v(nullptr);
  Task producer = spawn([&] {
    v.register_writer();
    v.put(1);
    v.put(2);
    v.put(3);
    v.deregister();
  }, nullptr);
  producer.join();
  EXPECT_EQ(v.get(3), 3);
  v.prune(2);
  EXPECT_THROW(v.get(1), std::out_of_range);
  EXPECT_EQ(v.get(3), 3);
}

// --- VerifiedMutex ----------------------------------------------------------------

TEST(VerifiedMutexTest, MutualExclusion) {
  VerifiedMutex mutex(nullptr);
  long counter = 0;
  std::vector<Task> tasks;
  for (int t = 0; t < 8; ++t) {
    tasks.push_back(spawn([&] {
      for (int i = 0; i < 1000; ++i) {
        VerifiedMutex::Guard guard(mutex);
        ++counter;
      }
    }, nullptr));
  }
  for (Task& t : tasks) t.join();
  EXPECT_EQ(counter, 8000);
}

TEST(VerifiedMutexTest, Reentrant) {
  VerifiedMutex mutex(nullptr);
  mutex.lock();
  mutex.lock();
  EXPECT_TRUE(mutex.held_by_current());
  mutex.unlock();
  EXPECT_TRUE(mutex.held_by_current());
  mutex.unlock();
  EXPECT_FALSE(mutex.held_by_current());
}

TEST(VerifiedMutexTest, UnlockByNonOwnerThrows) {
  VerifiedMutex mutex(nullptr);
  mutex.lock();
  Task t = spawn([&] { EXPECT_THROW(mutex.unlock(), std::logic_error); }, nullptr);
  t.join();
  mutex.unlock();
}

TEST(VerifiedMutexTest, TryLockRespectsOwnership) {
  VerifiedMutex mutex(nullptr);
  EXPECT_TRUE(mutex.try_lock());
  Task t = spawn([&] { EXPECT_FALSE(mutex.try_lock()); }, nullptr);
  t.join();
  mutex.unlock();
}

TEST(VerifiedMutexTest, AvoidanceInterruptsLockOrderDeadlock) {
  Verifier verifier(avoidance_config());
  VerifiedMutex a(&verifier), b(&verifier);
  CyclicBarrier both_hold(2, nullptr);  // unverified helper barrier

  std::atomic<int> interrupts{0};
  Task t1 = spawn_with(
      [&](TaskId child) { both_hold.register_task(child); },
      [&] {
        a.lock();
        both_hold.await();
        try {
          b.lock();
          b.unlock();
        } catch (const DeadlockAvoidedError&) {
          ++interrupts;
        }
        a.unlock();
      },
      &verifier);
  Task t2 = spawn_with(
      [&](TaskId child) { both_hold.register_task(child); },
      [&] {
        b.lock();
        both_hold.await();
        try {
          a.lock();
          a.unlock();
        } catch (const DeadlockAvoidedError&) {
          ++interrupts;
        }
        b.unlock();
      },
      &verifier);
  t1.join();
  t2.join();
  // At least one side must have been interrupted; both may be, depending on
  // interleaving, but never zero (that would have been the deadlock).
  EXPECT_GE(interrupts.load(), 1);
  EXPECT_EQ(verifier.state().blocked_count(), 0u);
}

TEST(VerifiedMutexTest, BarrierLockMixedCycleAvoided) {
  // t1 holds lock L and blocks on clock advance; t2 must acquire L before
  // it can advance: a lock/barrier cycle — only a unified analysis sees it.
  Verifier verifier(avoidance_config());
  set_default_verifier(&verifier);
  VerifiedMutex lock(&verifier);
  Clock c = Clock::make(&verifier);

  std::atomic<int> interrupts{0};
  Finish f(&verifier);
  async_clocked(f, {c}, [&] {
    lock.lock();
    try {
      c.advance();  // needs t2 (and the parent, which dropped) to advance
    } catch (const DeadlockAvoidedError&) {
      ++interrupts;
    }
    lock.unlock();
  });
  async_clocked(f, {c}, [&] {
    std::this_thread::sleep_for(10ms);  // let t1 take the lock and block
    try {
      lock.lock();   // held by t1, which waits for us: cycle
      lock.unlock();
      c.advance();
    } catch (const DeadlockAvoidedError&) {
      ++interrupts;
    }
  });
  c.drop();
  f.wait();
  set_default_verifier(nullptr);
  EXPECT_GE(interrupts.load(), 1);
}

}  // namespace
}  // namespace armus::rt
