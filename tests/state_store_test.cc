// Tests for the pluggable StateStore API: a conformance suite run against
// both the process-local implementation (DependencyState) and the
// shared-global-store one (dist::SharedStore), codec round-trip property
// tests, and cross-verifier deadlock detection through a shared store.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <type_traits>

#include "core/dependency_state.h"
#include "core/verifier.h"
#include "dist/codec.h"
#include "dist/store.h"
#include "util/rng.h"

namespace armus {
namespace {

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

// --- StateStore conformance ---------------------------------------------------

/// Factory per implementation; the typed suite below runs every case
/// against each. SharedStoreFactory hands out views onto one backing
/// dist::Store, so the conformance suite also pins down the merged-view
/// semantics (a second factory call is a *different site* of the same
/// store).
struct LocalStoreFactory {
  std::shared_ptr<StateStore> make() {
    return std::make_shared<DependencyState>();
  }
};

struct SharedStoreFactory {
  std::shared_ptr<dist::Store> backing = std::make_shared<dist::Store>();
  dist::SiteId next_site = 0;

  std::shared_ptr<StateStore> make() {
    return std::make_shared<dist::SharedStore>(backing, next_site++);
  }
};

template <typename Factory>
class StateStoreConformanceTest : public ::testing::Test {
 protected:
  Factory factory_;
};

using StoreFactories = ::testing::Types<LocalStoreFactory, SharedStoreFactory>;
TYPED_TEST_SUITE(StateStoreConformanceTest, StoreFactories);

TYPED_TEST(StateStoreConformanceTest, StartsEmpty) {
  auto store = this->factory_.make();
  EXPECT_EQ(store->blocked_count(), 0u);
  EXPECT_TRUE(store->snapshot().empty());
}

TYPED_TEST(StateStoreConformanceTest, SnapshotIsSortedByTask) {
  auto store = this->factory_.make();
  store->set_blocked(status(30, {{3, 1}}, {{3, 0}}));
  store->set_blocked(status(10, {{1, 1}}, {}));
  store->set_blocked(status(20, {{2, 2}}, {{2, 1}}));
  auto snapshot = store->snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].task, 10u);
  EXPECT_EQ(snapshot[1].task, 20u);
  EXPECT_EQ(snapshot[2].task, 30u);
  EXPECT_EQ(snapshot[1].waits, (std::vector<Resource>{{2, 2}}));
  EXPECT_EQ(snapshot[1].registered, (std::vector<RegEntry>{{2, 1}}));
}

TYPED_TEST(StateStoreConformanceTest, SetBlockedReplacesSameTask) {
  auto store = this->factory_.make();
  store->set_blocked(status(1, {{1, 1}}, {}));
  store->set_blocked(status(1, {{2, 5}}, {{2, 4}}));
  auto snapshot = store->snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].waits, (std::vector<Resource>{{2, 5}}));
  EXPECT_EQ(store->blocked_count(), 1u);
}

TYPED_TEST(StateStoreConformanceTest, ClearBlockedRemovesOnlyThatTask) {
  auto store = this->factory_.make();
  store->set_blocked(status(1, {{1, 1}}, {}));
  store->set_blocked(status(2, {{2, 1}}, {}));
  store->clear_blocked(1);
  store->clear_blocked(99);  // absent: no-op
  auto snapshot = store->snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].task, 2u);
}

TYPED_TEST(StateStoreConformanceTest, ClearEmptiesTheStore) {
  auto store = this->factory_.make();
  store->set_blocked(status(1, {{1, 1}}, {}));
  store->set_blocked(status(2, {{2, 1}}, {}));
  store->clear();
  EXPECT_EQ(store->blocked_count(), 0u);
  EXPECT_TRUE(store->snapshot().empty());
}

TYPED_TEST(StateStoreConformanceTest, TwoStoresShareTheMergedView) {
  // For the local factory both handles are independent stores; for the
  // shared factory they are two sites of one global store, whose snapshots
  // merge. Both behaviours are asserted through the same operations.
  auto a = this->factory_.make();
  auto b = this->factory_.make();
  a->set_blocked(status(1, {{1, 1}}, {}));
  b->set_blocked(status(2, {{2, 1}}, {}));
  bool shared = std::is_same_v<TypeParam, SharedStoreFactory>;
  EXPECT_EQ(a->snapshot().size(), shared ? 2u : 1u);
  EXPECT_EQ(b->blocked_count(), shared ? 2u : 1u);
  // clear() only drops the clearing store's own tasks.
  a->clear();
  auto remaining = b->snapshot();
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].task, 2u);
}

TYPED_TEST(StateStoreConformanceTest, VersionAdvancesOnlyOnRealChanges) {
  auto store = this->factory_.make();
  std::uint64_t v0 = store->version();
  EXPECT_NE(v0, StateStore::kUnversioned);

  store->set_blocked(status(1, {{1, 1}}, {}));
  std::uint64_t v1 = store->version();
  EXPECT_GT(v1, v0);

  // Identical re-publish (the avoidance recheck pattern): no epoch change,
  // so periodic scanners keep skipping.
  store->set_blocked(status(1, {{1, 1}}, {}));
  EXPECT_EQ(store->version(), v1);
  store->clear_blocked(99);  // absent: no change
  EXPECT_EQ(store->version(), v1);

  store->set_blocked(status(1, {{1, 2}}, {}));
  std::uint64_t v2 = store->version();
  EXPECT_GT(v2, v1);
  store->clear_blocked(1);
  EXPECT_GT(store->version(), v2);
}

TYPED_TEST(StateStoreConformanceTest, VersionSeesOtherPublishersWhenShared) {
  auto a = this->factory_.make();
  auto b = this->factory_.make();
  a->set_blocked(status(1, {{1, 1}}, {}));
  std::uint64_t va = a->version();
  b->set_blocked(status(2, {{2, 1}}, {}));
  if (std::is_same_v<TypeParam, SharedStoreFactory>) {
    // b is another site of the same global store: its publish must move
    // a's epoch, or a's Verifier would skip the scan that sees b's tasks.
    EXPECT_GT(a->version(), va);
  } else {
    EXPECT_EQ(a->version(), va);  // independent local stores
  }
}

// --- codec property tests -----------------------------------------------------

std::vector<BlockedStatus> random_batch(util::Xoshiro256& rng) {
  std::vector<BlockedStatus> batch;
  std::size_t count = rng.below(12);
  for (std::size_t i = 0; i < count; ++i) {
    BlockedStatus s;
    // Mix small ids (1-byte varints) with huge ones (full 10-byte varints).
    s.task = rng.chance(0.2) ? rng() : 1 + rng.below(300);
    std::size_t nwaits = rng.below(4);
    for (std::size_t w = 0; w < nwaits; ++w) {
      s.waits.push_back({1 + rng.below(40), rng.chance(0.1) ? rng() : rng.below(9)});
    }
    std::size_t nregs = rng.below(5);
    for (std::size_t r = 0; r < nregs; ++r) {
      s.registered.push_back({1 + rng.below(40), rng.below(9)});
    }
    batch.push_back(std::move(s));
  }
  return batch;
}

TEST(CodecPropertyTest, RandomBatchesRoundTrip) {
  util::Xoshiro256 rng(2015);
  for (int iter = 0; iter < 200; ++iter) {
    auto batch = random_batch(rng);
    std::string bytes = dist::encode_statuses(batch);
    EXPECT_EQ(dist::decode_statuses(bytes), batch) << "iteration " << iter;
  }
}

TEST(CodecPropertyTest, EveryStrictPrefixIsRejected) {
  // The decoder knows exactly how many fields follow from the embedded
  // counts, so no strict prefix of a valid encoding may parse.
  util::Xoshiro256 rng(4099);
  for (int iter = 0; iter < 20; ++iter) {
    auto batch = random_batch(rng);
    if (batch.empty()) continue;
    std::string bytes = dist::encode_statuses(batch);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_THROW(dist::decode_statuses(std::string_view(bytes).substr(0, len)),
                   dist::CodecError)
          << "prefix length " << len << " of " << bytes.size();
    }
  }
}

TEST(CodecPropertyTest, AppendedGarbageIsRejected) {
  util::Xoshiro256 rng(77);
  auto batch = random_batch(rng);
  std::string bytes = dist::encode_statuses(batch);
  bytes.push_back('\0');
  EXPECT_THROW(dist::decode_statuses(bytes), dist::CodecError);
}

// --- cross-verifier deadlock through a shared store ---------------------------

/// Half a 2-task cycle per verifier; neither half alone is cyclic.
void plant_split_cycle(Verifier& a, Verifier& b) {
  a.state().set_blocked(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  b.state().set_blocked(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
}

TEST(SharedStateTest, TwoVerifiersOnOneLocalStoreSeeEachOther) {
  auto shared = std::make_shared<DependencyState>();
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;
  config.store = shared;
  Verifier a(config), b(config);

  plant_split_cycle(a, b);
  EXPECT_EQ(a.state().blocked_count(), 2u);  // both publishers visible

  // Either verifier's checker sees the cross-verifier cycle.
  CheckResult at_a = a.check_now();
  CheckResult at_b = b.check_now();
  ASSERT_EQ(at_a.reports.size(), 1u);
  ASSERT_EQ(at_b.reports.size(), 1u);
  EXPECT_EQ(at_a.reports[0].tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(at_b.reports[0].tasks, (std::vector<TaskId>{1, 2}));
}

TEST(SharedStateTest, ScannerDetectsCrossVerifierCycle) {
  auto shared = std::make_shared<DependencyState>();
  VerifierConfig ca;
  ca.mode = VerifyMode::kDetection;
  ca.scanner_enabled = false;
  ca.store = shared;
  Verifier a(ca);  // pure publisher

  std::mutex m;
  std::condition_variable cv;
  std::vector<DeadlockReport> got;
  VerifierConfig cb = ca;
  cb.scanner_enabled = true;
  cb.period = std::chrono::milliseconds(5);
  cb.on_deadlock = [&](const DeadlockReport& r) {
    std::lock_guard<std::mutex> lock(m);
    got.push_back(r);
    cv.notify_all();
  };
  Verifier b(cb);  // the one checker of the shared state

  plant_split_cycle(a, b);
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(2),
                          [&] { return !got.empty(); }));
  EXPECT_EQ(got[0].tasks, (std::vector<TaskId>{1, 2}));
}

TEST(SharedStateTest, UnblockByOneVerifierVisibleToTheOther) {
  auto shared = std::make_shared<DependencyState>();
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;
  config.store = shared;
  Verifier a(config), b(config);
  a.before_block(status(1, {{1, 1}}, {{1, 0}}));
  EXPECT_EQ(b.state().blocked_count(), 1u);
  a.after_unblock(1);
  EXPECT_EQ(b.state().blocked_count(), 0u);
}

TEST(SharedStateTest, CrossSiteCycleThroughSharedStoreViews) {
  // The same split cycle, but each verifier talks to its own *site view*
  // of one dist::Store — statuses round-trip through the codec and the
  // slice store before the checker sees them.
  auto backing = std::make_shared<dist::Store>();
  VerifierConfig ca, cb;
  ca.mode = cb.mode = VerifyMode::kDetection;
  ca.scanner_enabled = cb.scanner_enabled = false;
  ca.store = std::make_shared<dist::SharedStore>(backing, 0);
  cb.store = std::make_shared<dist::SharedStore>(backing, 1);
  Verifier a(ca), b(cb);

  plant_split_cycle(a, b);
  CheckResult result = a.check_now();
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(result.reports[0].tasks, (std::vector<TaskId>{1, 2}));
  EXPECT_GT(backing->writes(), 0u);
  EXPECT_GT(backing->reads(), 0u);
}

TEST(SharedStateTest, DefaultConfigKeepsStoresPrivate) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.scanner_enabled = false;
  Verifier a(config), b(config);
  a.state().set_blocked(status(1, {{1, 1}}, {}));
  EXPECT_EQ(a.state().blocked_count(), 1u);
  EXPECT_EQ(b.state().blocked_count(), 0u);
  EXPECT_NE(a.store().get(), b.store().get());
}

}  // namespace
}  // namespace armus
