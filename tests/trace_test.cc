// Tests for the trace subsystem (docs/TRACE_FORMAT.md): the frame codec
// (including the byte examples the doc pins), truncated/corrupt-input
// property tests, recorder deduplication, and the replay-equivalence
// suite — replaying a recorded run must yield the identical deadlock
// verdict and cycle task set as the live run, across all four graph
// models and into any StateStore.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/verifier.h"
#include "dist/site.h"
#include "dist/store.h"
#include "trace/format.h"
#include "trace/recorder.h"
#include "trace/replayer.h"
#include "util/rng.h"

namespace armus::trace {
namespace {

std::string hex(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    if (!out.empty()) out += ' ';
    out += digits[c >> 4];
    out += digits[c & 0xf];
  }
  return out;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "armus_trace_test_" + name + "_" +
         std::to_string(::getpid()) + ".trace";
}

BlockedStatus status(TaskId task, std::vector<Resource> waits,
                     std::vector<RegEntry> registered) {
  BlockedStatus s;
  s.task = task;
  s.waits = std::move(waits);
  s.registered = std::move(registered);
  return s;
}

// --- Documented byte examples (normative: docs/TRACE_FORMAT.md) ----------

TEST(TraceFormatTest, DocumentedHeaderExample) {
  TraceHeader header;
  header.version = 1;
  header.start_ns = 64;
  header.meta = {{"mode", "detection"}};
  // magic, version 1, start_ns 64, 1 meta pair "mode" -> "detection".
  EXPECT_EQ(hex(encode_header(header)),
            "41 52 4d 55 53 54 52 43 01 40 01 "
            "04 6d 6f 64 65 "
            "09 64 65 74 65 63 74 69 6f 6e");

  std::string bytes = encode_header(header);
  std::size_t offset = 0;
  TraceHeader decoded = read_header(bytes, &offset);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(decoded.version, 1u);
  EXPECT_EQ(decoded.start_ns, 64u);
  EXPECT_EQ(decoded.meta_value("mode"), "detection");
  EXPECT_EQ(decoded.meta_value("absent"), "");
}

TEST(TraceFormatTest, DocumentedBlockedRecordExample) {
  // Task 7 blocks waiting on (phaser 1, phase 1) while registered on
  // (1, 1) and (2, 0) — the WIRE_PROTOCOL.md §1 status — 5 ns after the
  // previous record.
  Record record;
  record.type = RecordType::kBlocked;
  record.status = status(7, {{1, 1}}, {{1, 1}, {2, 0}});
  std::string out;
  append_record(out, record, 5);
  EXPECT_EQ(hex(out), "02 05 07 01 01 01 02 01 01 02 00");

  std::size_t offset = 0;
  Record decoded = read_record(out, &offset);
  EXPECT_EQ(offset, out.size());
  EXPECT_EQ(decoded.type, RecordType::kBlocked);
  EXPECT_EQ(decoded.at_ns, 5u);  // raw dt before the reader accumulates
  EXPECT_EQ(decoded.status, record.status);
}

TEST(TraceFormatTest, DocumentedReportRecordExample) {
  // The SG checker reports the {1, 2} cycle over (1,1) and (2,1), 300 ns
  // after the previous record.
  Record record;
  record.type = RecordType::kReport;
  record.report.model = GraphModel::kSg;
  record.report.tasks = {1, 2};
  record.report.resources = {{1, 1}, {2, 1}};
  std::string out;
  append_record(out, record, 300);
  EXPECT_EQ(hex(out), "06 ac 02 01 02 01 02 02 01 01 02 01");
}

TEST(TraceFormatTest, DocumentedSmallRecordExamples) {
  std::string out;
  Record reg;
  reg.type = RecordType::kTaskRegistered;
  reg.task = 7;
  reg.phaser = 2;
  reg.phase = 0;
  append_record(out, reg, 1);
  EXPECT_EQ(hex(out), "01 01 07 02 00");

  out.clear();
  Record scan;
  scan.type = RecordType::kScan;
  scan.scan = ScanInfo{2, 2, 2, GraphModel::kSg, 1};
  append_record(out, scan, 0);
  EXPECT_EQ(hex(out), "05 00 02 02 02 01 01");

  out.clear();
  Record unblocked;
  unblocked.type = RecordType::kUnblocked;
  unblocked.task = 7;
  append_record(out, unblocked, 2);
  EXPECT_EQ(hex(out), "03 02 07");

  out.clear();
  Record dereg;
  dereg.type = RecordType::kTaskDeregistered;
  dereg.task = 7;
  dereg.phaser = kAllPhasers;
  append_record(out, dereg, 0);
  EXPECT_EQ(hex(out), "04 00 07 00");
}

// --- Round trips and strictness ------------------------------------------

Record random_record(util::Xoshiro256& rng) {
  Record record;
  switch (rng.below(6)) {
    case 0:
      record.type = RecordType::kTaskRegistered;
      record.task = rng.below(1u << 20) + 1;
      record.phaser = rng.below(1000) + 1;
      record.phase = rng.below(100);
      break;
    case 1: {
      record.type = RecordType::kBlocked;
      record.status.task = rng.below(1u << 20) + 1;
      std::size_t nwaits = rng.below(4);
      for (std::size_t i = 0; i < nwaits; ++i) {
        record.status.waits.push_back({rng.below(1000) + 1, rng.below(100)});
      }
      std::size_t nregs = rng.below(4);
      for (std::size_t i = 0; i < nregs; ++i) {
        record.status.registered.push_back(
            {rng.below(1000) + 1, rng.below(100)});
      }
      break;
    }
    case 2:
      record.type = RecordType::kUnblocked;
      record.task = rng.below(1u << 20) + 1;
      break;
    case 3:
      record.type = RecordType::kTaskDeregistered;
      record.task = rng.below(1u << 20) + 1;
      record.phaser = rng.below(5);  // sometimes kAllPhasers
      break;
    case 4:
      record.type = RecordType::kScan;
      record.scan.blocked = rng.below(10000);
      record.scan.nodes = rng.below(10000);
      record.scan.edges = rng.below(100000);
      record.scan.model_used = static_cast<GraphModel>(rng.below(4));
      record.scan.reports = rng.below(10);
      break;
    default: {
      record.type = RecordType::kReport;
      record.report.model = static_cast<GraphModel>(rng.below(4));
      std::size_t ntasks = rng.below(5) + 1;
      for (std::size_t i = 0; i < ntasks; ++i) {
        record.report.tasks.push_back(rng.below(1u << 30) + 1);
      }
      std::size_t nres = rng.below(4);
      for (std::size_t i = 0; i < nres; ++i) {
        record.report.resources.push_back({rng.below(1000) + 1, rng.below(100)});
      }
      break;
    }
  }
  return record;
}

void expect_equal(const Record& a, const Record& b) {
  ASSERT_EQ(a.type, b.type);
  EXPECT_EQ(a.task, b.task);
  EXPECT_EQ(a.phaser, b.phaser);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.scan.blocked, b.scan.blocked);
  EXPECT_EQ(a.scan.nodes, b.scan.nodes);
  EXPECT_EQ(a.scan.edges, b.scan.edges);
  EXPECT_EQ(a.scan.model_used, b.scan.model_used);
  EXPECT_EQ(a.scan.reports, b.scan.reports);
  EXPECT_EQ(a.report.model, b.report.model);
  EXPECT_EQ(a.report.tasks, b.report.tasks);
  EXPECT_EQ(a.report.resources, b.report.resources);
}

TEST(TraceFormatTest, RandomRecordRoundTrip) {
  util::Xoshiro256 rng(0x7ace);
  for (int i = 0; i < 500; ++i) {
    Record record = random_record(rng);
    std::uint64_t dt = rng.below(1u << 30);
    std::string out;
    append_record(out, record, dt);
    std::size_t offset = 0;
    Record decoded = read_record(out, &offset);
    EXPECT_EQ(offset, out.size());
    EXPECT_EQ(decoded.at_ns, dt);
    decoded.at_ns = record.at_ns;
    expect_equal(record, decoded);
  }
}

TEST(TraceFormatTest, WriterReaderFileRoundTrip) {
  std::string path = temp_path("writer_reader");
  util::Xoshiro256 rng(0xf11e);
  std::vector<Record> records;
  {
    TraceHeader header;
    header.start_ns = 1000;
    header.meta = {{"mode", "detection"}, {"model", "auto"}};
    TraceWriter writer(path, header);
    std::uint64_t now = 1000;
    for (int i = 0; i < 100; ++i) {
      Record record = random_record(rng);
      now += rng.below(1000);
      record.at_ns = now;
      records.push_back(record);
      writer.append(record);
    }
    EXPECT_EQ(writer.records_written(), 100u);
    writer.flush();
  }
  TraceReader reader = TraceReader::open(path);
  EXPECT_EQ(reader.header().start_ns, 1000u);
  EXPECT_EQ(reader.header().meta_value("model"), "auto");
  Record decoded;
  for (const Record& expected : records) {
    ASSERT_TRUE(reader.next(&decoded));
    EXPECT_EQ(decoded.at_ns, expected.at_ns);  // absolute, reconstructed
    expect_equal(expected, decoded);
  }
  EXPECT_FALSE(reader.next(&decoded));
  std::remove(path.c_str());
}

TEST(TraceFormatTest, RejectsBadMagicVersionTypeAndModel) {
  EXPECT_THROW(TraceReader("ARMUSXYZ\x01\x00\x00"), TraceError);
  EXPECT_THROW(TraceReader("short"), TraceError);

  // Unsupported version 2.
  EXPECT_THROW(TraceReader(std::string("ARMUSTRC") + "\x02\x00\x00"),
               TraceError);

  TraceHeader header;
  header.start_ns = 1;
  std::string good = encode_header(header);
  {
    // Unknown record type 9.
    std::string bytes = good + "\x09\x00";
    TraceReader reader(bytes);
    Record record;
    EXPECT_THROW(reader.next(&record), TraceError);
  }
  {
    // SCAN with graph model 7 (out of range).
    std::string bytes = good;
    Record scan;
    scan.type = RecordType::kScan;
    append_record(bytes, scan, 0);
    bytes[bytes.size() - 2] = '\x07';  // model byte
    TraceReader reader(bytes);
    Record record;
    EXPECT_THROW(reader.next(&record), TraceError);
  }
}

TEST(TraceFormatTest, TruncationPropertyTest) {
  // Every strict prefix of a valid trace either fails loudly or decodes a
  // clean prefix of the records (a cut exactly on a record boundary is a
  // valid shorter trace — e.g. a process killed between appends).
  util::Xoshiro256 rng(0x7a1);
  TraceHeader header;
  header.start_ns = 7;
  std::string bytes = encode_header(header);
  std::vector<std::size_t> boundaries{bytes.size()};
  constexpr int kRecords = 20;
  for (int i = 0; i < kRecords; ++i) {
    append_record(bytes, random_record(rng), rng.below(128));
    boundaries.push_back(bytes.size());
  }

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string prefix = bytes.substr(0, len);
    bool is_boundary = false;
    std::size_t records_before = 0;
    for (std::size_t b = 0; b < boundaries.size(); ++b) {
      if (boundaries[b] == len) {
        is_boundary = true;
        records_before = b;
      }
    }
    if (len < boundaries[0]) {
      EXPECT_THROW(TraceReader(std::move(prefix)), TraceError) << len;
      continue;
    }
    TraceReader reader(std::move(prefix));
    Record record;
    std::size_t decoded = 0;
    if (is_boundary) {
      while (reader.next(&record)) ++decoded;
      EXPECT_EQ(decoded, records_before) << len;
    } else {
      EXPECT_THROW({
        while (reader.next(&record)) ++decoded;
      }, TraceError)
          << len;
      EXPECT_LT(decoded, static_cast<std::size_t>(kRecords)) << len;
    }
  }
}

// --- Recorder ------------------------------------------------------------

std::vector<Record> read_all(const std::string& path) {
  TraceReader reader = TraceReader::open(path);
  std::vector<Record> records;
  Record record;
  while (reader.next(&record)) records.push_back(record);
  return records;
}

TEST(RecorderTest, DedupsRepublishesAndSpuriousUnblocks) {
  std::string path = temp_path("dedup");
  {
    Recorder recorder({path, {}});
    BlockedStatus s = status(1, {{1, 1}}, {{1, 1}});
    recorder.on_blocked(s);
    recorder.on_blocked(s);  // avoidance recheck re-publish: dropped
    recorder.on_unblocked(99);  // never blocked: dropped
    recorder.on_blocked(status(1, {{1, 2}}, {{1, 2}}));  // real change
    recorder.on_unblocked(1);
    recorder.on_unblocked(1);  // second withdraw: dropped
    recorder.flush();
    EXPECT_EQ(recorder.records_written(), 3u);
  }
  std::vector<Record> records = read_all(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, RecordType::kBlocked);
  EXPECT_EQ(records[1].type, RecordType::kBlocked);
  EXPECT_EQ(records[2].type, RecordType::kUnblocked);
  std::remove(path.c_str());
}

TEST(RecorderTest, CapturesVerifierAndRegistryEvents) {
  std::string path = temp_path("verifier_events");
  {
    VerifierConfig config;
    config.mode = VerifyMode::kDetection;
    config.scanner_enabled = false;
    config.on_deadlock = [](const DeadlockReport&) {};
    config.observer = std::make_shared<Recorder>(Recorder::Options{path, {}});
    Verifier verifier(config);
    verifier.registry().set_entry(3, 9, 1);
    verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
    verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
    verifier.scan_now();
    verifier.after_unblock(1);
    verifier.after_unblock(2);
    verifier.registry().remove_entry(3, 9);
  }
  std::vector<Record> records = read_all(path);
  std::vector<RecordType> types;
  types.reserve(records.size());
  for (const Record& record : records) types.push_back(record.type);
  EXPECT_EQ(types,
            (std::vector<RecordType>{
                RecordType::kTaskRegistered, RecordType::kBlocked,
                RecordType::kBlocked, RecordType::kScan, RecordType::kReport,
                RecordType::kUnblocked, RecordType::kUnblocked,
                RecordType::kTaskDeregistered}));
  // The report is the planted {1, 2} cycle.
  EXPECT_EQ(records[4].report.tasks, (std::vector<TaskId>{1, 2}));
  std::remove(path.c_str());
}

TEST(RecorderTest, RollbackRestoresThePreviousVisibleStatus) {
  // A failed publish (store outage) rolls the store back to the task's
  // previous status; on_block_rollback must roll the trace back the same
  // way so replayed state tracks what checkers actually saw.
  std::string path = temp_path("rollback");
  {
    Recorder recorder({path, {}});
    BlockedStatus a = status(1, {{1, 1}}, {{1, 1}});
    BlockedStatus b = status(1, {{1, 2}}, {{1, 2}});
    recorder.on_blocked(a);
    recorder.on_blocked(b);     // re-block with a change...
    recorder.on_block_rollback(1);  // ...whose publish failed: back to a
    recorder.on_blocked(status(2, {{2, 1}}, {{2, 1}}));
    recorder.on_block_rollback(2);  // fresh publish failed: not blocked
    recorder.on_block_rollback(3);  // no preceding publish: no-op
  }
  std::vector<Record> records = read_all(path);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].type, RecordType::kBlocked);
  EXPECT_EQ(records[1].type, RecordType::kBlocked);
  EXPECT_EQ(records[2].type, RecordType::kBlocked);
  EXPECT_EQ(records[2].status, status(1, {{1, 1}}, {{1, 1}}));  // a again
  EXPECT_EQ(records[3].type, RecordType::kBlocked);
  EXPECT_EQ(records[3].status.task, 2u);
  EXPECT_EQ(records[4].type, RecordType::kUnblocked);
  EXPECT_EQ(records[4].task, 2u);
  std::remove(path.c_str());
}

TEST(RecorderTest, WriteFailureStopsCaptureLoudlyWithoutThrowing) {
  // /dev/full accepts the open but fails every flushed write (ENOSPC):
  // the recorder must latch the failure and keep absorbing events — a
  // tracing run must scream, not crash the traced program.
  if (!std::ifstream("/dev/full").good()) GTEST_SKIP() << "no /dev/full";
  Recorder recorder({"/dev/full", {}});
  recorder.on_blocked(status(1, {{1, 1}}, {{1, 1}}));
  recorder.flush();  // surfaces the ENOSPC
  EXPECT_TRUE(recorder.failed());
  recorder.on_blocked(status(2, {{2, 1}}, {{2, 1}}));  // dropped, no throw
  recorder.flush();
  EXPECT_TRUE(recorder.failed());
}

// --- Replay equivalence --------------------------------------------------

/// Records a live detection run under `model`: a planted 2-cycle plus an
/// acyclic chain, one scan while deadlocked (the live verdict), then a
/// rescue and a final clean scan. Returns the live run's reports.
std::vector<DeadlockReport> record_live_run(const std::string& path,
                                            GraphModel model) {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.model = model;
  config.scanner_enabled = false;
  config.on_deadlock = [](const DeadlockReport&) {};
  config.observer = std::make_shared<Recorder>(Recorder::Options{path, {}});
  Verifier verifier(config);

  verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
  verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
  // Innocent bystanders: 5 -> 6 -> (nothing), acyclic.
  verifier.before_block(status(5, {{10, 1}}, {{10, 1}, {11, 0}}));
  verifier.before_block(status(6, {{11, 1}}, {{11, 1}}));
  verifier.scan_now();

  // Rescue: everything unblocks, and the post-rescue state is clean — a
  // replay-to-end would see nothing, which is exactly why replay checks at
  // the recorded scan points.
  for (TaskId task : {1, 2, 5, 6}) verifier.after_unblock(task);
  verifier.scan_now();
  return verifier.reported();
}

class ReplayEquivalenceTest : public testing::TestWithParam<GraphModel> {};

TEST_P(ReplayEquivalenceTest, ReplayMatchesLiveRun) {
  GraphModel model = GetParam();
  std::string path = temp_path("equiv_" + armus::to_string(model));
  std::vector<DeadlockReport> live = record_live_run(path, model);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].tasks, (std::vector<TaskId>{1, 2}));

  OfflineVerifier::Options options;
  options.model = model;
  OfflineVerifier verifier(options);
  OfflineVerifier::Result result = verifier.run(MergedTrace({path}));

  EXPECT_EQ(result.scans, 2u);
  EXPECT_TRUE(result.verdicts_match());
  EXPECT_TRUE(result.cycles_match());
  ASSERT_EQ(result.replayed.size(), 1u);
  EXPECT_EQ(result.replayed[0].tasks, live[0].tasks);
  ASSERT_EQ(result.recorded.size(), 1u);
  EXPECT_EQ(result.recorded[0].tasks, live[0].tasks);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ReplayEquivalenceTest,
                         testing::Values(GraphModel::kWfg, GraphModel::kSg,
                                         GraphModel::kGrg, GraphModel::kAuto),
                         [](const testing::TestParamInfo<GraphModel>& info) {
                           return armus::to_string(info.param);
                         });

TEST(ReplayTest, DeadlockFreeRunStaysDeadlockFree) {
  std::string path = temp_path("clean");
  {
    VerifierConfig config;
    config.mode = VerifyMode::kDetection;
    config.scanner_enabled = false;
    config.observer = std::make_shared<Recorder>(Recorder::Options{path, {}});
    Verifier verifier(config);
    verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
    verifier.scan_now();
    verifier.after_unblock(1);
  }
  OfflineVerifier verifier({});
  OfflineVerifier::Result result = verifier.run(MergedTrace({path}));
  EXPECT_TRUE(result.replayed.empty());
  EXPECT_TRUE(result.recorded.empty());
  EXPECT_TRUE(result.verdicts_match());
  EXPECT_TRUE(result.cycles_match());
  std::remove(path.c_str());
}

TEST(ReplayTest, CrossSiteCycleFromSharedRecorder) {
  // The in-process mirror of examples/distributed_detection.cpp: two
  // sites over one slice store, each holding half of a cross-site cycle;
  // one shared recorder captures both halves into a single trace, and the
  // offline replay reproduces the cycle no single site's local state
  // contains.
  std::string path = temp_path("cross_site");
  {
    auto recorder = std::make_shared<Recorder>(Recorder::Options{path, {}});
    auto store = std::make_shared<dist::Store>();
    dist::Site::Config c0;
    c0.id = 0;
    c0.observer = recorder;
    dist::Site::Config c1;
    c1.id = 1;
    c1.observer = recorder;
    dist::Site site0(c0, store);
    dist::Site site1(c1, store);
    site0.verifier().before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
    site1.verifier().before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
    site0.publish_now();
    site1.publish_now();
    ASSERT_TRUE(site0.check_now());
    ASSERT_TRUE(site1.check_now());
    ASSERT_EQ(site0.reported().size(), 1u);
    ASSERT_EQ(site1.reported().size(), 1u);
  }
  OfflineVerifier verifier({});
  OfflineVerifier::Result result = verifier.run(MergedTrace({path}));
  EXPECT_TRUE(result.verdicts_match());
  EXPECT_TRUE(result.cycles_match());
  ASSERT_EQ(result.replayed.size(), 1u);
  EXPECT_EQ(result.replayed[0].tasks, (std::vector<TaskId>{1, 2}));
  std::remove(path.c_str());
}

TEST(ReplayTest, AvoidanceInterruptReproducedOffline) {
  std::string path = temp_path("avoidance");
  {
    VerifierConfig config;
    config.mode = VerifyMode::kAvoidance;
    config.observer = std::make_shared<Recorder>(Recorder::Options{path, {}});
    Verifier verifier(config);
    verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
    EXPECT_THROW(
        verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}})),
        DeadlockAvoidedError);
  }
  OfflineVerifier verifier({});
  OfflineVerifier::Result result = verifier.run(MergedTrace({path}));
  // The doomed task's status was withdrawn *after* the recorded doom-check
  // scan, so the offline check at that point sees the full cycle.
  EXPECT_TRUE(result.verdicts_match());
  EXPECT_TRUE(result.cycles_match());
  ASSERT_EQ(result.recorded.size(), 1u);
  EXPECT_EQ(result.recorded[0].tasks, (std::vector<TaskId>{1, 2}));
  std::remove(path.c_str());
}

TEST(ReplayTest, ReplaysIntoSharedStore) {
  // "Feeds a recorded stream back into any StateStore": replay the same
  // trace into a dist::SharedStore slice — the statuses round-trip through
  // the slice codec and the verdict is unchanged.
  std::string path = temp_path("shared_store");
  std::vector<DeadlockReport> live = record_live_run(path, GraphModel::kAuto);
  ASSERT_EQ(live.size(), 1u);

  OfflineVerifier::Options options;
  options.store =
      std::make_shared<dist::SharedStore>(std::make_shared<dist::Store>(), 0);
  OfflineVerifier verifier(options);
  OfflineVerifier::Result result = verifier.run(MergedTrace({path}));
  EXPECT_TRUE(result.verdicts_match());
  EXPECT_TRUE(result.cycles_match());
  std::remove(path.c_str());
}

TEST(MergedTraceTest, MergesFilesByTimestamp) {
  std::string path_a = temp_path("merge_a");
  std::string path_b = temp_path("merge_b");
  {
    TraceHeader header;
    header.start_ns = 100;
    TraceWriter writer(path_a, header);
    Record record;
    record.type = RecordType::kUnblocked;
    record.task = 1;
    record.at_ns = 150;
    writer.append(record);
    record.task = 3;
    record.at_ns = 350;
    writer.append(record);
  }
  {
    TraceHeader header;
    header.start_ns = 200;
    TraceWriter writer(path_b, header);
    Record record;
    record.type = RecordType::kUnblocked;
    record.task = 2;
    record.at_ns = 250;
    writer.append(record);
  }
  MergedTrace merged({path_a, path_b});
  ASSERT_EQ(merged.records().size(), 3u);
  EXPECT_EQ(merged.records()[0].record.task, 1u);
  EXPECT_EQ(merged.records()[0].source, 0u);
  EXPECT_EQ(merged.records()[1].record.task, 2u);
  EXPECT_EQ(merged.records()[1].source, 1u);
  EXPECT_EQ(merged.records()[2].record.task, 3u);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// --- Segment rotation (docs/TRACE_FORMAT.md §5) ---------------------------

/// All records of one on-disk segment, decoded strictly.
std::vector<Record> decode_file(const std::string& path,
                                TraceHeader* header = nullptr) {
  TraceReader reader = TraceReader::open(path);
  if (header != nullptr) *header = reader.header();
  std::vector<Record> records;
  Record record;
  while (reader.next(&record)) records.push_back(record);
  return records;
}

TEST(RotationTest, SegmentsReplayToTheUnrotatedVerdict) {
  // The same live run, recorded twice: once into a single file, once with
  // an aggressively small segment budget. The rotated set must (a) split
  // into several segments that each decode standalone, (b) keep the REPORT
  // record whole in exactly one segment — the regression this test pins is
  // a record straddling a rotation boundary — and (c) merge back to the
  // identical verdict.
  std::string plain = temp_path("rot_plain");
  std::vector<DeadlockReport> live = record_live_run(plain, GraphModel::kAuto);
  ASSERT_EQ(live.size(), 1u);

  std::string base = temp_path("rot_segmented");
  {
    VerifierConfig config;
    config.mode = VerifyMode::kDetection;
    config.scanner_enabled = false;
    config.on_deadlock = [](const DeadlockReport&) {};
    Recorder::Options options;
    options.path = base;
    options.max_segment_bytes = 48;  // a couple of records per segment
    auto recorder = std::make_shared<Recorder>(options);
    config.observer = recorder;
    Verifier verifier(config);
    verifier.before_block(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
    verifier.before_block(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
    verifier.before_block(status(5, {{10, 1}}, {{10, 1}, {11, 0}}));
    verifier.before_block(status(6, {{11, 1}}, {{11, 1}}));
    verifier.scan_now();
    for (TaskId task : {1, 2, 5, 6}) verifier.after_unblock(task);
    verifier.scan_now();
    recorder->flush();
    ASSERT_GT(recorder->segments(), 2u);
    EXPECT_EQ(segment_paths(base).size(), recorder->segments());
    EXPECT_FALSE(recorder->failed());
  }

  // Every segment decodes standalone: full header, strict decode to EOF,
  // and the continuation metadata on every segment but the first.
  std::size_t reports = 0;
  std::vector<std::string> segments = segment_paths(base);
  for (std::size_t index = 0; index < segments.size(); ++index) {
    TraceHeader header;
    std::vector<Record> records = decode_file(segments[index], &header);
    if (index == 0) {
      EXPECT_TRUE(header.meta_value("segment").empty());
    } else {
      EXPECT_EQ(header.meta_value("segment"), std::to_string(index));
      EXPECT_FALSE(records.empty()) << segments[index];
    }
    for (const Record& record : records) {
      reports += record.type == RecordType::kReport ? 1 : 0;
    }
  }
  EXPECT_EQ(reports, 1u);  // never straddled, never duplicated

  // expand_segments turns the base path into the full rotated set, and the
  // merged replay agrees with the single-file recording of the same run.
  std::vector<std::string> expanded = expand_segments({base});
  EXPECT_EQ(expanded, segments);
  OfflineVerifier::Result rotated =
      OfflineVerifier({}).run(MergedTrace(expanded));
  OfflineVerifier::Result unrotated =
      OfflineVerifier({}).run(MergedTrace({plain}));
  EXPECT_TRUE(rotated.verdicts_match());
  EXPECT_TRUE(rotated.cycles_match());
  ASSERT_EQ(rotated.replayed.size(), unrotated.replayed.size());
  EXPECT_EQ(rotated.replayed[0].fingerprint(),
            unrotated.replayed[0].fingerprint());
  ASSERT_EQ(rotated.recorded.size(), 1u);
  EXPECT_EQ(rotated.recorded[0].fingerprint(), live[0].fingerprint());

  std::remove(plain.c_str());
  for (const std::string& segment : segments) std::remove(segment.c_str());
}

TEST(RotationTest, EverySegmentBeginsWithACheckpointOfLiveState) {
  // Rotate in the middle of a blocked interval: the next segment must
  // re-emit the live registrations and statuses so it replays standalone —
  // checking only the final segment must still see the planted cycle.
  std::string base = temp_path("rot_checkpoint");
  {
    Recorder::Options options;
    options.path = base;
    options.max_segment_bytes = 64;
    Recorder recorder(options);
    recorder.on_task_registered(1, 1, 1);
    recorder.on_blocked(status(1, {{1, 1}}, {{1, 1}, {2, 0}}));
    recorder.on_blocked(status(2, {{2, 1}}, {{1, 0}, {2, 1}}));
    // Keep appending until a rotation happened with the cycle still live.
    for (TaskId task = 20; recorder.segments() < 2; ++task) {
      recorder.on_blocked(status(task, {{30, 1}}, {{30, 1}}));
    }
    recorder.flush();
  }
  std::vector<std::string> segments = segment_paths(base);
  ASSERT_GE(segments.size(), 2u);

  OfflineVerifier::Options options;
  options.final_scan = true;
  OfflineVerifier verifier(options);
  OfflineVerifier::Result last_only =
      verifier.run(MergedTrace({segments.back()}));
  ASSERT_FALSE(last_only.replayed.empty());
  EXPECT_EQ(last_only.replayed[0].tasks, (std::vector<TaskId>{1, 2}));
  for (const std::string& segment : segments) std::remove(segment.c_str());
}

// --- Partition invariance -------------------------------------------------

TEST(MergedTraceTest, PartitionInvarianceProperty) {
  // Splitting one recorded timeline across k files — however the records
  // are dealt out — must not change the merged replay's verdict: the merge
  // key is the timestamp, not the file layout. This is the property the
  // multi-process capture path (one file per process) leans on.
  std::string path = temp_path("partition");
  std::vector<DeadlockReport> live = record_live_run(path, GraphModel::kAuto);
  ASSERT_EQ(live.size(), 1u);
  std::vector<Record> records = decode_file(path);
  std::remove(path.c_str());
  // Re-time strictly increasing so the merged order is unambiguous.
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].at_ns = 1000 * (i + 1);
  }

  auto replay = [](const std::vector<std::string>& paths) {
    OfflineVerifier verifier({});
    return verifier.run(MergedTrace(paths));
  };
  auto write_partition = [&](const std::string& out,
                             const std::vector<Record>& slice) {
    TraceHeader header;
    header.start_ns = 1;
    TraceWriter writer(out, header);
    for (const Record& record : slice) writer.append(record);
    writer.flush();
  };

  std::string whole = temp_path("partition_whole");
  write_partition(whole, records);
  OfflineVerifier::Result baseline = replay({whole});
  ASSERT_EQ(baseline.replayed.size(), 1u);
  ASSERT_EQ(baseline.recorded.size(), 1u);

  util::Xoshiro256 rng(0x5117);
  for (int round = 0; round < 8; ++round) {
    std::size_t k = 2 + rng.below(3);  // 2..4 files
    std::vector<std::vector<Record>> parts(k);
    for (const Record& record : records) {
      parts[rng.below(k)].push_back(record);
    }
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < k; ++i) {
      paths.push_back(temp_path("partition_" + std::to_string(round) + "_" +
                                std::to_string(i)));
      write_partition(paths.back(), parts[i]);
    }
    OfflineVerifier::Result split = replay(paths);
    EXPECT_EQ(split.records, baseline.records) << "round " << round;
    EXPECT_EQ(split.scans, baseline.scans) << "round " << round;
    ASSERT_EQ(split.replayed.size(), 1u) << "round " << round;
    EXPECT_EQ(split.replayed[0].fingerprint(),
              baseline.replayed[0].fingerprint())
        << "round " << round;
    ASSERT_EQ(split.recorded.size(), 1u) << "round " << round;
    EXPECT_EQ(split.recorded[0].fingerprint(),
              baseline.recorded[0].fingerprint())
        << "round " << round;
    for (const std::string& part : paths) std::remove(part.c_str());
  }
  std::remove(whole.c_str());
}

}  // namespace
}  // namespace armus::trace
