// Unit tests for src/util: env parsing, RNG determinism, the Georges et al.
// statistics protocol and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "util/env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace armus::util {
namespace {

// --- env -------------------------------------------------------------------

TEST(EnvTest, UnsetReturnsFallback) {
  ::unsetenv("ARMUS_TEST_UNSET");
  EXPECT_EQ(env_int("ARMUS_TEST_UNSET", 42), 42);
  EXPECT_DOUBLE_EQ(env_double("ARMUS_TEST_UNSET", 1.5), 1.5);
  EXPECT_TRUE(env_bool("ARMUS_TEST_UNSET", true));
  EXPECT_FALSE(env_str("ARMUS_TEST_UNSET").has_value());
}

TEST(EnvTest, ParsesInteger) {
  ::setenv("ARMUS_TEST_INT", "123", 1);
  EXPECT_EQ(env_int("ARMUS_TEST_INT", 0), 123);
  ::setenv("ARMUS_TEST_INT", "-7", 1);
  EXPECT_EQ(env_int("ARMUS_TEST_INT", 0), -7);
  ::unsetenv("ARMUS_TEST_INT");
}

TEST(EnvTest, RejectsMalformedInteger) {
  ::setenv("ARMUS_TEST_BAD", "12x", 1);
  EXPECT_THROW(env_int("ARMUS_TEST_BAD", 0), std::invalid_argument);
  ::setenv("ARMUS_TEST_BAD", "abc", 1);
  EXPECT_THROW(env_int("ARMUS_TEST_BAD", 0), std::invalid_argument);
  ::unsetenv("ARMUS_TEST_BAD");
}

TEST(EnvTest, ParsesDouble) {
  ::setenv("ARMUS_TEST_DBL", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("ARMUS_TEST_DBL", 0), 2.25);
  ::unsetenv("ARMUS_TEST_DBL");
}

TEST(EnvTest, ParsesBooleans) {
  for (const char* yes : {"1", "true", "YES", "On"}) {
    ::setenv("ARMUS_TEST_BOOL", yes, 1);
    EXPECT_TRUE(env_bool("ARMUS_TEST_BOOL", false)) << yes;
  }
  for (const char* no : {"0", "false", "NO", "off"}) {
    ::setenv("ARMUS_TEST_BOOL", no, 1);
    EXPECT_FALSE(env_bool("ARMUS_TEST_BOOL", true)) << no;
  }
  ::setenv("ARMUS_TEST_BOOL", "maybe", 1);
  EXPECT_THROW(env_bool("ARMUS_TEST_BOOL", false), std::invalid_argument);
  ::unsetenv("ARMUS_TEST_BOOL");
}

// --- rng -------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool all_equal = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    auto va = a(), vb = b(), vc = c();
    all_equal &= (va == vb);
    any_diff_c |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(RngTest, BelowStaysInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
  }
}

TEST(RngTest, RangeInclusive) {
  Xoshiro256 rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// --- stats -----------------------------------------------------------------

TEST(StatsTest, SummaryOfKnownSamples) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  // stddev of {1,2,3,4} with n-1 = sqrt(5/3)
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(s.ci95, 1.96 * s.stddev / 2.0, 1e-12);
}

TEST(StatsTest, EmptyInputIsZeroed) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_rel(), 0.0);
}

TEST(StatsTest, RunSamplesDiscardsWarmup) {
  int calls = 0;
  Summary s = run_samples(5, [&] { ++calls; });
  EXPECT_EQ(calls, 6);  // 5 samples + 1 discarded warm-up
  EXPECT_EQ(s.count, 5u);
}

TEST(StatsTest, RelativeOverhead) {
  Summary base = summarize({2.0, 2.0});
  Summary measured = summarize({2.2, 2.2});
  EXPECT_NEAR(relative_overhead(measured, base), 0.10, 1e-9);
  EXPECT_EQ(format_overhead(0.07), "7%");
  EXPECT_EQ(format_overhead(-0.04), "-4%");
}

TEST(StatsTest, WelchDetectsAClearDifference) {
  Summary a = summarize({10.0, 10.1, 9.9, 10.05, 9.95});
  Summary b = summarize({12.0, 12.1, 11.9, 12.05, 11.95});
  WelchResult r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant_at_5pct);
  EXPECT_LT(r.t, 0.0);  // a's mean is below b's
}

TEST(StatsTest, WelchAcceptsOverlappingSamples) {
  Summary a = summarize({10.0, 10.8, 9.2, 10.5, 9.5});
  Summary b = summarize({10.1, 10.9, 9.3, 10.4, 9.6});
  WelchResult r = welch_t_test(a, b);
  EXPECT_FALSE(r.significant_at_5pct);  // no evidence of a difference
}

TEST(StatsTest, WelchHandlesDegenerateInputs) {
  // Too few samples: never significant.
  EXPECT_FALSE(welch_t_test(summarize({1.0}), summarize({2.0, 2.1}))
                   .significant_at_5pct);
  // Zero variance, equal means: indistinguishable.
  EXPECT_FALSE(welch_t_test(summarize({3.0, 3.0}), summarize({3.0, 3.0}))
                   .significant_at_5pct);
  // Zero variance, different means: exactly different.
  EXPECT_TRUE(welch_t_test(summarize({3.0, 3.0}), summarize({4.0, 4.0}))
                  .significant_at_5pct);
}

// --- table -----------------------------------------------------------------

TEST(TableTest, RendersAlignedColumnsAndCsv) {
  Table t({"bench", "threads", "overhead"});
  t.add_row({"CG", "64", "9%"});
  t.add_row({"MG", "2", "-5%"});
  std::string text = t.to_text();
  EXPECT_NE(text.find("bench"), std::string::npos);
  EXPECT_NE(text.find("CG"), std::string::npos);
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("bench,threads,overhead\n"), std::string::npos);
  EXPECT_NE(csv.find("CG,64,9%\n"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, FormatsDoubles) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

}  // namespace
}  // namespace armus::util
