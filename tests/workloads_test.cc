// Validation tests for every benchmark workload: each kernel must produce
// correct output (its own validation) when run unchecked, under detection
// and under avoidance, across thread counts — and must never trip the
// verifier (these programs are deadlock-free).
#include <gtest/gtest.h>

#include "workloads/dist_kernels.h"
#include "workloads/spmd.h"
#include "workloads/workload.h"

namespace armus::wl {
namespace {

using namespace std::chrono_literals;

VerifierConfig detection_config() {
  VerifierConfig config;
  config.mode = VerifyMode::kDetection;
  config.period = 10ms;
  config.on_deadlock = [](const DeadlockReport& r) {
    ADD_FAILURE() << "false deadlock report: " << r.to_string();
  };
  return config;
}

// --- partition helper ----------------------------------------------------------

TEST(PartitionTest, CoversAllItemsDisjointly) {
  for (std::size_t count : {0u, 1u, 7u, 64u, 65u}) {
    for (int parts : {1, 3, 8}) {
      std::size_t covered = 0;
      std::size_t expected_next = 0;
      for (int p = 0; p < parts; ++p) {
        Range r = partition(count, parts, p);
        EXPECT_EQ(r.begin, expected_next);
        expected_next = r.end;
        covered += r.size();
      }
      EXPECT_EQ(covered, count);
      EXPECT_EQ(expected_next, count);
    }
  }
}

TEST(PartitionTest, BalancedWithinOne) {
  for (int parts : {3, 7}) {
    std::size_t min_size = SIZE_MAX, max_size = 0;
    for (int p = 0; p < parts; ++p) {
      Range r = partition(100, parts, p);
      min_size = std::min(min_size, r.size());
      max_size = std::max(max_size, r.size());
    }
    EXPECT_LE(max_size - min_size, 1u);
  }
}

// --- local kernels, parameterized over (kernel, threads, mode) -------------------

struct LocalCase {
  std::string kernel;
  int threads;
  VerifyMode mode;
};

std::string case_name(const ::testing::TestParamInfo<LocalCase>& info) {
  std::string mode = to_string(info.param.mode);
  return info.param.kernel + "_t" + std::to_string(info.param.threads) + "_" +
         mode;
}

class LocalKernelTest : public ::testing::TestWithParam<LocalCase> {};

TEST_P(LocalKernelTest, ValidatesAndRaisesNoDeadlock) {
  const LocalCase& param = GetParam();
  RunConfig config;
  config.threads = param.threads;
  config.scale = 1;

  std::unique_ptr<Verifier> verifier;
  if (param.mode == VerifyMode::kDetection) {
    verifier = std::make_unique<Verifier>(detection_config());
  } else if (param.mode == VerifyMode::kAvoidance) {
    VerifierConfig vc;
    vc.mode = VerifyMode::kAvoidance;
    verifier = std::make_unique<Verifier>(std::move(vc));
  }
  config.verifier = verifier.get();

  RunResult result = kernel_by_name(param.kernel).run(config);
  EXPECT_TRUE(result.valid) << param.kernel << ": " << result.detail;
  if (verifier) {
    EXPECT_EQ(verifier->stats().avoidance_interrupts, 0u);
    EXPECT_TRUE(verifier->reported().empty());
  }
}

std::vector<LocalCase> local_cases() {
  std::vector<LocalCase> cases;
  for (const char* kernel : {"BT", "CG", "FT", "MG", "RT", "SP"}) {
    for (int threads : {1, 4, 7}) {
      cases.push_back({kernel, threads, VerifyMode::kOff});
    }
    cases.push_back({kernel, 4, VerifyMode::kDetection});
    cases.push_back({kernel, 4, VerifyMode::kAvoidance});
  }
  // Course kernels ignore `threads` (intrinsic task structure).
  for (const char* kernel : {"SE", "FI", "FR", "BFS", "PS"}) {
    cases.push_back({kernel, 1, VerifyMode::kOff});
    cases.push_back({kernel, 1, VerifyMode::kDetection});
    cases.push_back({kernel, 1, VerifyMode::kAvoidance});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, LocalKernelTest,
                         ::testing::ValuesIn(local_cases()), case_name);

// --- deterministic checksums across thread counts --------------------------------

TEST(KernelDeterminismTest, ChecksumIndependentOfThreads) {
  // CG is excluded: its dot products reduce rank partials, so the float
  // rounding legitimately depends on the partition (as in NPB itself).
  for (const char* name : {"BT", "SP", "RT"}) {
    RunConfig one;
    one.threads = 1;
    RunConfig many;
    many.threads = 6;
    RunResult a = kernel_by_name(name).run(one);
    RunResult b = kernel_by_name(name).run(many);
    EXPECT_EQ(a.checksum, b.checksum) << name;
  }
}

// --- registry -----------------------------------------------------------------

TEST(KernelRegistryTest, SuitesHavePaperLineups) {
  std::vector<std::string> npb;
  for (const Kernel& k : npb_kernels()) npb.push_back(k.name);
  EXPECT_EQ(npb, (std::vector<std::string>{"BT", "CG", "FT", "MG", "RT", "SP"}));
  std::vector<std::string> course;
  for (const Kernel& k : course_kernels()) course.push_back(k.name);
  EXPECT_EQ(course, (std::vector<std::string>{"SE", "FI", "FR", "BFS", "PS"}));
  EXPECT_THROW(kernel_by_name("NOPE"), std::out_of_range);
}

// --- distributed kernels ----------------------------------------------------------

class DistKernelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DistKernelTest, ValidatesUncheckedAndChecked) {
  const std::string& name = GetParam();
  const DistKernel* kernel = nullptr;
  for (const DistKernel& k : dist_kernels()) {
    if (k.name == name) kernel = &k;
  }
  ASSERT_NE(kernel, nullptr);

  DistRunConfig config;
  config.sites = 2;
  config.tasks_per_site = 2;
  config.scale = 1;

  // Unchecked.
  RunResult unchecked = kernel->run(config);
  EXPECT_TRUE(unchecked.valid) << name << ": " << unchecked.detail;

  // Checked: a live cluster with fast periods; no deadlock may be reported.
  dist::Cluster::Config cc;
  cc.site_count = 2;
  cc.publish_period = 20ms;
  cc.check_period = 20ms;
  std::atomic<int> reports{0};
  cc.on_deadlock = [&](dist::SiteId, const DeadlockReport&) { ++reports; };
  dist::Cluster cluster(cc);
  cluster.start();
  config.cluster = &cluster;
  RunResult checked = kernel->run(config);
  cluster.stop();
  EXPECT_TRUE(checked.valid) << name << ": " << checked.detail;
  EXPECT_EQ(reports.load(), 0) << name;
  EXPECT_EQ(unchecked.checksum, checked.checksum) << name;
}

INSTANTIATE_TEST_SUITE_P(Suite, DistKernelTest,
                         ::testing::Values("FT", "KMEANS", "JACOBI", "SSCA2",
                                           "STREAM"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(DistConfigTest, VerifierRoundRobinOverSites) {
  dist::Cluster::Config cc;
  cc.site_count = 3;
  dist::Cluster cluster(cc);
  DistRunConfig config;
  config.sites = 3;
  config.tasks_per_site = 2;
  config.cluster = &cluster;
  EXPECT_EQ(config.total_tasks(), 6);
  EXPECT_EQ(config.verifier_for(0), &cluster.site(0).verifier());
  EXPECT_EQ(config.verifier_for(1), &cluster.site(1).verifier());
  EXPECT_EQ(config.verifier_for(3), &cluster.site(0).verifier());
}

}  // namespace
}  // namespace armus::wl
