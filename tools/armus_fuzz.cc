// armus-fuzz: deterministic trace-format fuzzer (src/fuzz/, docs/PREDICT.md §4).
//
//   armus-fuzz [options] <seed-trace> [seed-trace...]
//       Mutates the seed traces and replays every mutant against all four
//       graph models and both store backends, asserting the strict-decode
//       contract: a mutant either raises TraceError or replays cleanly
//       with backend-identical verdicts. Exit 0 iff no violation.
//         --seed N        mutation RNG seed (default 1) — the whole repro
//         --runs N        mutants to generate (default 500)
//         --corpus DIR    load/grow a minimized corpus; violations are
//                         saved there as crash-<i>.trace
//
//   armus-fuzz --wire [--seed N] [--runs N]
//       Wire-protocol mode: starts an in-process armus-kv server on an
//       ephemeral port and throws mutated request frames at it over real
//       TCP (src/fuzz/wire.h), asserting the framing contract from
//       docs/WIRE_PROTOCOL.md — clean error responses or connection
//       drops, never a crash or a hung listener. No seed traces needed.
//
//   armus-fuzz --chaos [--seed N] [--scenario NAME] [--verbose]
//       Fault-injection mode (src/fuzz/chaos.h, docs/HA.md): spawns real
//       primary/replica armus-kv *processes* (this binary re-exec'd via
//       the hidden --kv-server helper), SIGKILLs / SIGSTOPs them, severs
//       the replication link, and promotes mid-churn, asserting that no
//       slice version regresses within a generation and that the
//       cross-process deadlock is re-detected after every fault.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "fuzz/chaos.h"
#include "fuzz/harness.h"
#include "fuzz/wire.h"

using namespace armus;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: armus-fuzz [--seed N] [--runs N] [--corpus DIR]\n"
               "                  <seed-trace> [seed-trace...]\n"
               "       armus-fuzz --wire [--seed N] [--runs N]\n"
               "       armus-fuzz --chaos [--seed N] [--scenario NAME] "
               "[--verbose]\n");
  return 2;
}

int run_wire(const fuzz::WireOptions& options) {
  net::KvServer server;
  server.start();
  fuzz::WireStats stats = fuzz::fuzz_wire(server, options);
  server.stop();

  std::printf("fuzz: wire seed %llu, %llu mutant(s): %llu response(s) "
              "(%llu error status), %llu connection drop(s)\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(stats.mutants),
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.error_responses),
              static_cast<unsigned long long>(stats.drops));
  if (!stats.ok()) {
    for (const fuzz::Violation& violation : stats.violations) {
      std::fprintf(stderr, "VIOLATION: %s\n", violation.what.c_str());
    }
    std::printf("fuzz: %zu violation(s) — contract BROKEN\n",
                stats.violations.size());
    return 1;
  }
  std::printf("fuzz: contract holds (zero violations)\n");
  return 0;
}

int run_chaos_mode(const fuzz::ChaosOptions& options) {
  fuzz::ChaosStats stats = fuzz::run_chaos(options);
  std::printf(
      "fuzz: chaos seed %llu, %llu scenario(s): %llu publish round(s) "
      "(%llu lost to outage windows), %llu snapshot(s), %llu "
      "convergence(s)\n",
      static_cast<unsigned long long>(options.seed),
      static_cast<unsigned long long>(stats.scenarios),
      static_cast<unsigned long long>(stats.publishes),
      static_cast<unsigned long long>(stats.publish_failures),
      static_cast<unsigned long long>(stats.observations),
      static_cast<unsigned long long>(stats.convergences));
  if (!stats.ok()) {
    for (const fuzz::Violation& violation : stats.violations) {
      std::fprintf(stderr, "VIOLATION: %s\n", violation.what.c_str());
    }
    std::printf("fuzz: %zu violation(s) — contract BROKEN\n",
                stats.violations.size());
    return 1;
  }
  std::printf("fuzz: contract holds (zero violations)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::Harness::Options options;
  std::vector<std::string> paths;
  bool wire = false;
  bool chaos = false;
  bool kv_server = false;
  std::string replica_of;
  fuzz::ChaosOptions chaos_options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::stoull(argv[++i]));
    } else if (arg == "--runs" && i + 1 < argc) {
      options.runs = static_cast<std::uint64_t>(std::stoull(argv[++i]));
    } else if (arg == "--corpus" && i + 1 < argc) {
      options.corpus_dir = argv[++i];
    } else if (arg == "--wire") {
      wire = true;
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--scenario" && i + 1 < argc) {
      chaos_options.only = argv[++i];
    } else if (arg == "--verbose") {
      chaos_options.verbose = true;
    } else if (arg == "--kv-server") {
      kv_server = true;  // hidden: the chaos harness's server helper
    } else if (arg == "--replica-of" && i + 1 < argc) {
      replica_of = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (kv_server) {
    return fuzz::run_chaos_server(replica_of);
  }
  if (chaos) {
    if (!paths.empty() || wire) return usage();
    chaos_options.server_exe = argv[0];
    chaos_options.seed = options.seed;
    return run_chaos_mode(chaos_options);
  }
  if (wire) {
    if (!paths.empty()) return usage();
    fuzz::WireOptions wire_options;
    wire_options.seed = options.seed;
    wire_options.runs = options.runs;
    return run_wire(wire_options);
  }
  if (paths.empty()) return usage();

  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "armus-fuzz: cannot read %s\n", path.c_str());
      return 2;
    }
    options.seeds.emplace_back(std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>());
  }

  fuzz::Harness harness(options);
  fuzz::Harness::Stats stats = harness.run();

  std::printf("fuzz: seed %llu, %llu mutant(s): %llu decoded, %llu cleanly "
              "rejected, %llu replay(s), %llu corpus entr%s added\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(stats.mutants),
              static_cast<unsigned long long>(stats.decoded),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.replays),
              static_cast<unsigned long long>(stats.corpus_added),
              stats.corpus_added == 1 ? "y" : "ies");

  if (!stats.violations.empty()) {
    std::size_t index = 0;
    for (const fuzz::Violation& violation : stats.violations) {
      std::fprintf(stderr, "VIOLATION: %s\n", violation.what.c_str());
      if (!options.corpus_dir.empty()) {
        std::filesystem::create_directories(options.corpus_dir);
        std::string path = options.corpus_dir + "/crash-" +
                           std::to_string(index++) + ".trace";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(violation.mutant.data(),
                  static_cast<std::streamsize>(violation.mutant.size()));
        std::fprintf(stderr, "  repro bytes: %s\n", path.c_str());
      }
    }
    std::printf("fuzz: %zu violation(s) — contract BROKEN\n",
                stats.violations.size());
    return 1;
  }
  std::printf("fuzz: contract holds (zero violations)\n");
  return 0;
}
