// armus-top: live view of an armus-kv cluster (docs/OBSERVABILITY.md).
//
//   armus-top [--store tcp://host:port] [options]
//       Connects to the armus-kv server (--store, or ARMUS_STORE when the
//       flag is absent), issues INSPECT for the per-site table and
//       LIST_SLICES for the merged global snapshot, runs the same deadlock
//       checker a site runs, and renders the result. By default the view
//       refreshes every second like top(1); Ctrl-C exits.
//         --interval-ms N   refresh period (default 1000)
//         --once            render one view and exit
//         --json            machine-readable one-line JSON (armus.top.v1)
//                           instead of the table; with --once, the output
//                           CI scripts parse
//         --dot             dump the merged wait-for graph in GraphViz DOT
//                           and exit (implies --once)
//         --stats           print the server's STATS registry snapshot
//                           (armus.obs.registry.v1 JSON) and exit
//         --follow          subscribe to the server's WATCH_EVENTS push
//                           stream and print each armus.kv.event.v1 event
//                           as it happens — a scrolling incident log, no
//                           polling; reconnects (walking the endpoint
//                           list) when the stream dies; runs until killed
//         --events LIST     with --follow: comma-separated categories to
//                           subscribe to (lifecycle,slices,health; default
//                           all)
//         --model M         graph model for the analysis (wfg|sg|grg|auto,
//                           default auto)
//
// Exit codes: 0 = rendered (deadlock or not), 2 = bad usage or the server
// is unreachable.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "dist/store.h"
#include "net/config.h"
#include "net/watch.h"
#include "obs/top.h"
#include "util/env.h"

using namespace armus;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: armus-top [--store tcp://host:port] [--interval-ms N]\n"
               "                 [--once] [--json] [--dot] [--stats] [--model M]\n"
               "                 [--follow [--events lifecycle,slices,health]]\n"
               "--store falls back to ARMUS_STORE\n");
  return 2;
}

/// --follow: consume the WATCH_EVENTS push stream forever, reconnecting
/// (and walking the endpoint list — a failover promotes a replica, the
/// log follows it) whenever the stream dies. Never polls.
int follow_events(const std::string& url, std::uint64_t mask, bool json,
                  long interval_ms) {
  std::vector<net::Endpoint> endpoints = net::parse_tcp_endpoints(url);
  std::string token = util::env_str("ARMUS_AUTH_TOKEN").value_or("");
  std::size_t at = 0;
  for (;;) {
    const net::Endpoint& endpoint = endpoints[at % endpoints.size()];
    try {
      net::WatchClient::Config config;
      config.host = endpoint.host;
      config.port = endpoint.port;
      config.mask = mask;
      config.auth_token = token;
      net::WatchClient watch(std::move(config));
      if (!json) {
        std::printf("following tcp://%s:%u (events mask %llu)\n",
                    endpoint.host.c_str(), endpoint.port,
                    static_cast<unsigned long long>(watch.mask()));
        std::fflush(stdout);
      }
      while (std::optional<std::string> line = watch.next()) {
        if (json) {
          std::puts(line->c_str());
        } else {
          std::puts(obs::render_event_line(*line).c_str());
        }
        std::fflush(stdout);
      }
    } catch (const dist::StoreUnavailableError& e) {
      std::fprintf(stderr, "armus-top: %s\n", e.what());
    }
    ++at;  // stream died: retry, preferring the next endpoint
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string url;
  long interval_ms = 1000;
  bool once = false;
  bool json = false;
  bool dot = false;
  bool stats = false;
  bool follow = false;
  std::uint64_t event_mask = net::kWatchAll;
  bool events_given = false;
  GraphModel model = GraphModel::kAuto;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      url = argv[++i];
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atol(argv[++i]);
      if (interval_ms <= 0) return usage();
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--dot") {
      dot = true;
      once = true;
    } else if (arg == "--stats") {
      stats = true;
      once = true;
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--events" && i + 1 < argc) {
      events_given = true;
      try {
        event_mask = obs::parse_event_filter(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "armus-top: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--model" && i + 1 < argc) {
      try {
        model = graph_model_from_string(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "armus-top: %s\n", e.what());
        return 2;
      }
    } else {
      return usage();
    }
  }
  if (url.empty()) {
    if (auto env_url = util::env_str("ARMUS_STORE")) url = *env_url;
  }
  if (url.empty()) {
    std::fprintf(stderr, "armus-top: no server (--store or ARMUS_STORE)\n");
    return 2;
  }
  if (events_given && !follow) return usage();
  if (follow && (once || dot || stats)) return usage();

  try {
    if (follow) return follow_events(url, event_mask, json, interval_ms);
    std::shared_ptr<net::RemoteStore> store = net::remote_store_from_url(url);
    if (stats) {
      try {
        std::puts(store->stats_json().c_str());
      } catch (const dist::StoreUnavailableError& e) {
        std::fprintf(stderr, "armus-top: %s\n", e.what());
        return 2;
      }
      return 0;
    }
    for (;;) {
      obs::TopView view;
      try {
        view = obs::build_top_view(*store, model);
      } catch (const dist::StoreUnavailableError& e) {
        std::fprintf(stderr, "armus-top: %s\n", e.what());
        if (once) return 2;
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
        continue;
      }
      if (dot) {
        std::fputs(obs::render_top_dot(view).c_str(), stdout);
      } else if (json) {
        std::puts(obs::render_top_json(view).c_str());
      } else {
        if (!once) std::fputs("\x1b[H\x1b[2J", stdout);  // clear like top(1)
        std::fputs(obs::render_top_table(view, url).c_str(), stdout);
      }
      std::fflush(stdout);
      if (once) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "armus-top: %s\n", e.what());
    return 2;
  }
}
