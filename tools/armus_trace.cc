// armus-trace: the offline half of the trace subsystem (docs/TRACE_FORMAT.md).
//
//   armus-trace record -o run.trace [--] <command> [args...]
//       Runs <command> with ARMUS_TRACE set so every env-configured
//       verifier, site, and bench harness in it records; prints a trace
//       summary and propagates the command's exit code.
//
//   armus-trace verify [options] <trace> [trace...]
//       Replays the trace(s) — multiple files (one per process of a
//       distributed run) merge into one timeline — re-runs the deadlock
//       analysis at every recorded scan point, and compares the offline
//       verdict against the live run's recorded reports. Exit 0 iff they
//       agree.
//         --model wfg|sg|grg|auto   re-verify under a different graph model
//         --store tcp://host:port   replay into armus-kv (dist::SharedStore)
//         --site N                  slice id for --store (default 0)
//         --speed K                 pace the replay at K× recorded speed
//                                   (default: as fast as possible)
//         --final-scan              run one extra check after the last record
//         --compare task-sets|union|off
//                                   how verdicts are compared (default
//                                   task-sets; union for avoidance traces
//                                   whose reports merge cycles with the
//                                   interrupted task; off always exits 0)
//
//   armus-trace predict [options] <trace> [trace...]
//       Predictive verification (docs/PREDICT.md): search causally
//       consistent reorderings of the recorded events for deadlocks the
//       observed schedule never reached. Predicted cycles are reported
//       distinctly from observed/replayed ones; with --witness-dir each
//       prediction's witness schedule is written as a replayable trace.
//         --model wfg|sg|grg|auto   analysis model (default: trace meta)
//         --witness-dir DIR         write witness-N.trace per prediction
//         --max-anchors N           bound the cut search (default 4096)
//
//   armus-trace stats <trace> [trace...]
//       Per-file header metadata, record counts, duration, peak blocked.
//
//   armus-trace dot [--model M] [--at-scan N | --at-end] <trace> [trace...]
//       Reconstructs the replayed state (default: just before the first
//       recorded report, or the end when the run was deadlock-free) and
//       prints the analysis graph in GraphViz DOT syntax.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/graph_builder.h"
#include "core/status_codec.h"
#include "dist/store.h"
#include "graph/dot.h"
#include "net/config.h"
#include "predict/predictor.h"
#include "trace/format.h"
#include "trace/replayer.h"

using namespace armus;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: armus-trace record -o <path> [--] <command> [args...]\n"
               "       armus-trace verify [--model M] [--store URL --site N]\n"
               "                          [--speed K] [--final-scan]\n"
               "                          [--compare task-sets|union|off]\n"
               "                          <trace> [trace...]\n"
               "       armus-trace predict [--model M] [--witness-dir DIR]\n"
               "                           [--max-anchors N] <trace> [trace...]\n"
               "       armus-trace stats <trace> [trace...]\n"
               "       armus-trace dot [--model M] [--at-scan N | --at-end]\n"
               "                       <trace> [trace...]\n");
  return 2;
}

std::string describe_report(const DeadlockReport& report) {
  return report.to_string();
}

// --- record ------------------------------------------------------------------

int cmd_record(int argc, char** argv) {
  std::string path;
  int i = 0;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strcmp(argv[i], "--") == 0) {
      ++i;
      break;
    } else {
      break;
    }
  }
  if (path.empty() || i >= argc) return usage();

  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    ::setenv("ARMUS_TRACE", path.c_str(), 1);
    std::vector<char*> child_argv(argv + i, argv + argc);
    child_argv.push_back(nullptr);
    ::execvp(child_argv[0], child_argv.data());
    std::perror("execvp");
    std::_Exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;

  try {
    trace::MergedTrace trace({path});
    std::printf("recorded %zu records to %s (command exit %d)\n",
                trace.records().size(), path.c_str(), exit_code);
  } catch (const trace::TraceError& e) {
    std::fprintf(stderr,
                 "command exited %d but %s is unreadable: %s\n"
                 "(multi-process commands need one file per process: "
                 "ARMUS_TRACE with a %%p token)\n",
                 exit_code, path.c_str(), e.what());
    return exit_code != 0 ? exit_code : 1;
  }
  return exit_code;
}

// --- verify ------------------------------------------------------------------

enum class Compare { kTaskSets, kUnion, kOff };

std::set<TaskId> task_union(const std::vector<DeadlockReport>& reports) {
  std::set<TaskId> out;
  for (const DeadlockReport& report : reports) {
    out.insert(report.tasks.begin(), report.tasks.end());
  }
  return out;
}

int cmd_verify(int argc, char** argv) {
  trace::OfflineVerifier::Options options;
  Compare compare = Compare::kTaskSets;
  bool model_set = false;
  bool compare_set = false;
  std::string store_url;
  dist::SiteId site = 0;
  std::vector<std::string> paths;

  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      options.model = graph_model_from_string(value("--model"));
      model_set = true;
    } else if (arg == "--store") {
      store_url = value("--store");
    } else if (arg == "--site") {
      site = static_cast<dist::SiteId>(std::stoul(value("--site")));
    } else if (arg == "--speed") {
      options.speed = std::stod(value("--speed"));
    } else if (arg == "--final-scan") {
      options.final_scan = true;
    } else if (arg == "--compare") {
      std::string mode = value("--compare");
      if (mode == "task-sets") {
        compare = Compare::kTaskSets;
      } else if (mode == "union") {
        compare = Compare::kUnion;
      } else if (mode == "off") {
        compare = Compare::kOff;
      } else {
        std::fprintf(stderr, "unknown --compare mode '%s'\n", mode.c_str());
        return 2;
      }
      compare_set = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) return usage();

  if (!store_url.empty()) {
    options.store = std::make_shared<dist::SharedStore>(
        net::remote_store_from_url(store_url), site);
  }

  trace::MergedTrace merged(trace::expand_segments(paths));
  // Defaults come from the recorded run's header meta: re-verify under the
  // model the live run used, and compare unions for avoidance traces —
  // their live reports merge every cycle with the interrupted task, while
  // a detection-style replay reports raw cycles.
  for (const trace::TraceHeader& header : merged.headers()) {
    if (!model_set && !header.meta_value("ARMUS_GRAPH_MODEL").empty()) {
      options.model =
          graph_model_from_string(header.meta_value("ARMUS_GRAPH_MODEL"));
      model_set = true;
    }
    if (!compare_set && header.meta_value("ARMUS_MODE") == "avoidance") {
      compare = Compare::kUnion;
      compare_set = true;
    }
  }
  trace::OfflineVerifier verifier(options);
  trace::OfflineVerifier::Result result = verifier.run(merged);

  std::printf("replayed %llu records from %zu trace(s), ran %llu checks\n",
              static_cast<unsigned long long>(result.records), paths.size(),
              static_cast<unsigned long long>(result.scans));
  std::printf("live run reported %zu deadlock(s):\n", result.recorded.size());
  for (const DeadlockReport& report : result.recorded) {
    std::printf("  recorded: %s\n", describe_report(report).c_str());
  }
  std::printf("offline replay found %zu deadlock(s):\n", result.replayed.size());
  for (const DeadlockReport& report : result.replayed) {
    std::printf("  replayed: %s\n", describe_report(report).c_str());
  }

  bool match = true;
  switch (compare) {
    case Compare::kTaskSets:
      match = result.cycles_match();
      break;
    case Compare::kUnion:
      match = task_union(result.recorded) == task_union(result.replayed);
      break;
    case Compare::kOff:
      match = true;
      break;
  }
  if (match) {
    std::printf("VERDICT MATCH: offline replay reproduces the live run's "
                "deadlock report\n");
  } else if (result.recorded_subset_of_replayed()) {
    // The one-directional guarantee held (no recorded deadlock was lost);
    // the extras are cycles the live run's scan timing never reported —
    // a predictive finding, or a state change racing a scan append.
    std::printf("VERDICT MISMATCH: replay found additional deadlock(s) the "
                "live run did not report\n");
  } else {
    std::printf("VERDICT MISMATCH: replay lost recorded deadlock(s)\n");
  }
  return match ? 0 : 1;
}

// --- predict -----------------------------------------------------------------

int cmd_predict(int argc, char** argv) {
  predict::Predictor::Options options;
  options.max_anchors = 4096;
  bool model_set = false;
  std::string witness_dir;
  std::vector<std::string> paths;

  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--model" && i + 1 < argc) {
      options.model = graph_model_from_string(argv[++i]);
      model_set = true;
    } else if (arg == "--witness-dir" && i + 1 < argc) {
      witness_dir = argv[++i];
    } else if (arg == "--max-anchors" && i + 1 < argc) {
      options.max_anchors =
          static_cast<std::uint64_t>(std::stoull(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) return usage();

  trace::MergedTrace merged(trace::expand_segments(paths));
  for (const trace::TraceHeader& header : merged.headers()) {
    if (!model_set && !header.meta_value("ARMUS_GRAPH_MODEL").empty()) {
      options.model =
          graph_model_from_string(header.meta_value("ARMUS_GRAPH_MODEL"));
      model_set = true;
    }
  }

  predict::Predictor predictor(options);
  predict::Predictor::Result result = predictor.run(merged);

  std::printf("observed schedule: %zu recorded, %zu replayed deadlock(s)\n",
              result.observed.size(), result.replayed.size());
  for (const DeadlockReport& report : result.observed) {
    std::printf("  observed: %s\n", describe_report(report).c_str());
  }
  for (const DeadlockReport& report : result.replayed) {
    std::printf("  replayed: %s\n", describe_report(report).c_str());
  }
  std::printf("cut search: %llu anchor(s), %llu cut(s) replayed%s\n",
              static_cast<unsigned long long>(result.anchors_tried),
              static_cast<unsigned long long>(result.cuts_checked),
              result.anchors_capped ? " (anchor cap hit)" : "");

  std::size_t witness_index = 0;
  if (!witness_dir.empty() && !result.predictions.empty()) {
    std::filesystem::create_directories(witness_dir);
  }
  for (const predict::Prediction& prediction : result.predictions) {
    std::printf("  %s: %s\n", prediction.novel ? "PREDICTED" : "confirmed",
                describe_report(prediction.report).c_str());
    if (!witness_dir.empty()) {
      std::string path = witness_dir + "/witness-" +
                         std::to_string(witness_index++) + ".trace";
      predict::write_witness(path, prediction);
      std::printf("    witness: %s (%zu records; replay with "
                  "'armus-trace verify --compare off --final-scan')\n",
                  path.c_str(), prediction.witness.size());
    }
  }
  std::printf("predict: %zu cycle(s) via cut search, %zu novel, "
              "%zu observed-or-replayed\n",
              result.predictions.size(), result.novel_count(),
              result.predictions.size() - result.novel_count());
  return 0;
}

// --- stats -------------------------------------------------------------------

int cmd_stats(int argc, char** argv) {
  if (argc == 0) return usage();
  std::vector<std::string> paths =
      trace::expand_segments(std::vector<std::string>(argv, argv + argc));
  for (const std::string& path : paths) {
    trace::TraceReader reader = trace::TraceReader::open(path);
    std::printf("%s:\n", path.c_str());
    for (const auto& [key, value] : reader.header().meta) {
      std::printf("  meta %s = %s\n", key.c_str(), value.c_str());
    }
    std::map<std::string, std::uint64_t> counts;
    std::set<TaskId> tasks;
    std::size_t blocked = 0;
    std::size_t peak_blocked = 0;
    std::set<TaskId> live;
    std::uint64_t first_ns = 0;
    std::uint64_t last_ns = 0;
    std::uint64_t records = 0;
    trace::Record record;
    while (reader.next(&record)) {
      ++records;
      counts[trace::to_string(record.type)]++;
      if (first_ns == 0) first_ns = record.at_ns;
      last_ns = record.at_ns;
      switch (record.type) {
        case trace::RecordType::kBlocked:
          tasks.insert(record.status.task);
          live.insert(record.status.task);
          blocked = live.size();
          peak_blocked = std::max(peak_blocked, blocked);
          break;
        case trace::RecordType::kUnblocked:
          live.erase(record.task);
          break;
        default:
          break;
      }
    }
    std::printf("  records: %llu\n", static_cast<unsigned long long>(records));
    for (const auto& [type, count] : counts) {
      std::printf("    %-17s %llu\n", type.c_str(),
                  static_cast<unsigned long long>(count));
    }
    std::printf("  span: %.3f ms\n",
                static_cast<double>(last_ns - first_ns) / 1e6);
    std::printf("  distinct blocked tasks: %zu (peak concurrent %zu)\n",
                tasks.size(), peak_blocked);
  }
  return 0;
}

// --- dot ---------------------------------------------------------------------

int cmd_dot(int argc, char** argv) {
  GraphModel model = GraphModel::kAuto;
  long at_scan = -1;
  bool at_end = false;
  std::vector<std::string> paths;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--model" && i + 1 < argc) {
      model = graph_model_from_string(argv[++i]);
    } else if (arg == "--at-scan" && i + 1 < argc) {
      at_scan = std::stol(argv[++i]);
    } else if (arg == "--at-end") {
      at_end = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) return usage();

  trace::MergedTrace merged(trace::expand_segments(paths));
  auto store = std::make_shared<DependencyState>();
  TaskRegistry registry;
  trace::Replayer replayer(store.get(), &registry);

  // Default stop point: just before the first recorded report — the state
  // the live checker saw when it found the deadlock (the end state of a
  // rescued run is empty and uninteresting).
  long scans_seen = 0;
  for (const trace::TimedRecord& timed : merged.records()) {
    const trace::Record& record = timed.record;
    if (!at_end) {
      if (at_scan >= 0 && record.type == trace::RecordType::kScan &&
          scans_seen++ == at_scan) {
        break;
      }
      if (at_scan < 0 && record.type == trace::RecordType::kReport) break;
    }
    replayer.apply(record);
  }

  std::vector<BlockedStatus> snapshot = trace::merged_snapshot(*store, registry);
  BuiltGraph built = build_graph(snapshot, model);
  std::string dot = graph::to_dot(
      built.graph, "armus_trace",
      [&](graph::Node v) { return built.label(v); });
  std::fputs(dot.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  try {
    if (command == "record") return cmd_record(argc - 2, argv + 2);
    if (command == "verify") return cmd_verify(argc - 2, argv + 2);
    if (command == "predict") return cmd_predict(argc - 2, argv + 2);
    if (command == "stats") return cmd_stats(argc - 2, argv + 2);
    if (command == "dot") return cmd_dot(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "armus-trace %s: %s\n", command.c_str(), e.what());
    return 2;
  }
  return usage();
}
