#!/usr/bin/env python3
"""Validates the machine-readable bench artifacts: schema shape plus the
counter invariants each bench guarantees.

Usage: check_bench_json.py [--baseline FILE --max-drift FACTOR]
                           BENCH_FILE [BENCH_FILE ...]

Each file is dispatched on its "schema" field. The invariants are
*counters*, not wall-clock, so this check cannot flake on a loaded CI
box.

With --baseline, each BENCH_FILE is additionally compared against the
committed snapshot of the same schema: the wall-clock trajectory metrics
(ns per scan/round, latency percentiles, steady-state speedup) may drift
by at most FACTOR (default 5.0) in the *bad* direction. Improvement is
never an error. This is a coarse regression tripwire, not a benchmark:
the factor leaves room for runner noise, the counters above stay exact.

armus.bench.incremental_scan.v1 (micro_incremental_scan):

  steady_state_local   every scan after the priming one is epoch-skipped
                       (scans_skipped == scans, graphs_built == 0) — the
                       "nothing changed -> nothing computed" guarantee.
  one_site_churn       the checking site fetches exactly the changed
                       slices; quiet sites skip every publish; the
                       churning site ships deltas; the steady tail skips
                       every check.
  one_site_churn_kv    the identical invariants over a real armus-kv TCP
                       server: the network hop may cost wall-clock, never
                       extra transfers (PUT_SLICE_DELTA and
                       LIST_SLICES_SINCE on the wire).
  full_churn           everything changes, nothing is skipped, and the
                       reader fetches exactly sites x rounds slices.

  The steady-state speedup (reported in the JSON for the perf
  trajectory) is also asserted to be >= 10x: the skip path is orders of
  magnitude faster than a from-scratch scan at 1k blocked tasks, so the
  bound has margin even on a noisy runner.

armus.bench.net_store.v1 (micro_net_store --json-out):

  publish_latency      every publish reached the server and nothing
                       errored (server_requests >= rounds,
                       server_errors == 0, client_failures == 0, one
                       connect); the latency histogram is internally
                       consistent (count == rounds,
                       min <= p50 <= p99 <= p999 <= max, mean within
                       [min, max]). The percentile values themselves are
                       the perf trajectory, not asserted.
  decode_cache         reads over an unchanged store decode nothing;
                       each read after one republish decodes exactly the
                       one changed slice (decodes_unchanged == 0,
                       decodes_one_changed == reads).

armus.bench.kv_fleet.v1 (micro_kv_fleet --json-out):

  fleet_<N>            one workload per fleet size swept. Every publish
                       succeeded and every sample was recorded
                       (request_errors == 0, publishes == sites x rounds,
                       latency count == publishes); the server dropped
                       nothing and errored nothing even with the idle
                       connection crowd parked on the event loop
                       (server_errors == 0, all dropped_* == 0,
                       client_failures == 0); each worker held one
                       persistent connection (client_connects == workers);
                       the store ends with exactly one live slice per
                       site; percentiles are monotone. Latency and
                       requests_per_sec are the perf trajectory.

Stdlib only, so it runs identically in CI and on a bare dev box.
"""

import json
import sys

failures = []


def check(cond, message):
    if not cond:
        failures.append(message)


def require(workloads, name):
    for w in workloads:
        if w.get("name") == name:
            return w
    check(False, f"workload '{name}' missing")
    return None


def check_incremental_scan(doc):
    workloads = doc.get("workloads", [])

    steady = require(workloads, "steady_state_local")
    if steady:
        c = steady["counters"]
        scans = steady["scans"]
        check(c["scans_skipped"] == scans,
              f"steady state: {c['scans_skipped']} of {scans} scans skipped")
        check(c["graphs_built"] == 0,
              f"steady state: graphs_built == {c['graphs_built']}, expected 0")
        check(c["checks"] == 0,
              f"steady state: checks == {c['checks']}, expected 0")
        check(steady["speedup"] >= 10.0,
              f"steady state speedup {steady['speedup']} < 10x")

    # The one-site-churn invariants hold identically for the in-process
    # store and the armus-kv TCP variant.
    for workload_name in ("one_site_churn", "one_site_churn_kv"):
        churn = require(workloads, workload_name)
        if not churn:
            continue
        c = churn["counters"]
        rounds = churn["rounds"]
        steady_rounds = churn["steady_rounds"]
        quiet_sites = churn["sites"] - 1
        check(c["slices_fetched_during_churn"] == c["changed_slices"],
              f"{workload_name}: fetched {c['slices_fetched_during_churn']} "
              f"slices for {c['changed_slices']} changes")
        check(c["changed_slices"] == rounds,
              f"{workload_name}: {c['changed_slices']} changes in "
              f"{rounds} rounds")
        check(c["churner_delta_publishes"] == rounds,
              f"{workload_name}: {c['churner_delta_publishes']} delta "
              f"publishes, expected {rounds}")
        check(c["churner_publishes_skipped"] == steady_rounds,
              f"{workload_name}: churner skipped "
              f"{c['churner_publishes_skipped']}, expected {steady_rounds}")
        # Quiet sites skip the churn rounds AND the steady tail.
        expected_quiet = quiet_sites * (rounds + steady_rounds)
        check(c["quiet_site_publishes_skipped"] == expected_quiet,
              f"{workload_name}: quiet sites skipped "
              f"{c['quiet_site_publishes_skipped']}, expected {expected_quiet}")
        check(c["checker_checks_skipped"] == steady_rounds,
              f"{workload_name}: checker skipped "
              f"{c['checker_checks_skipped']}, expected {steady_rounds}")
        check(c["store_failures"] == 0,
              f"{workload_name}: {c['store_failures']} store failures")

    full = require(workloads, "full_churn")
    if full:
        c = full["counters"]
        expected = full["sites"] * full["rounds"]
        check(c["changed_slices"] == expected,
              f"full churn: {c['changed_slices']} changes, expected {expected}")
        check(c["slices_fetched_during_churn"] == expected,
              f"full churn: fetched {c['slices_fetched_during_churn']}, "
              f"expected {expected}")
        check(c["checker_checks_skipped"] == 0,
              f"full churn: {c['checker_checks_skipped']} checks skipped, "
              f"expected 0")
        check(c["store_failures"] == 0,
              f"full churn: {c['store_failures']} store failures")


def check_net_store(doc):
    workloads = doc.get("workloads", [])

    publish = require(workloads, "publish_latency")
    if publish:
        c = publish["counters"]
        rounds = publish["rounds"]
        hist = publish["latency_us"]
        check(hist["count"] == rounds,
              f"publish_latency: histogram holds {hist['count']} samples "
              f"for {rounds} rounds")
        check(hist["min_us"] <= hist["p50_us"] <= hist["p99_us"]
              <= hist["p999_us"] <= hist["max_us"],
              f"publish_latency: percentiles not monotone: {hist}")
        check(hist["min_us"] <= hist["mean_us"] <= hist["max_us"],
              f"publish_latency: mean outside [min, max]: {hist}")
        # >= rounds, not ==: the client handshake may issue extra requests.
        check(c["server_requests"] >= rounds,
              f"publish_latency: server saw {c['server_requests']} requests "
              f"for {rounds} publishes")
        check(c["server_errors"] == 0,
              f"publish_latency: {c['server_errors']} server errors")
        check(c["client_failures"] == 0,
              f"publish_latency: {c['client_failures']} client failures")
        check(c["client_connects"] == 1,
              f"publish_latency: {c['client_connects']} connects, expected "
              f"one persistent connection")

    decode = require(workloads, "decode_cache")
    if decode:
        c = decode["counters"]
        reads = decode["reads"]
        check(c["decodes_unchanged"] == 0,
              f"decode_cache: {c['decodes_unchanged']} decodes over an "
              f"unchanged store, expected 0")
        check(c["decodes_one_changed"] == reads,
              f"decode_cache: {c['decodes_one_changed']} decodes for "
              f"{reads} one-slice changes, expected {reads}")


def check_kv_fleet(doc):
    workloads = doc.get("workloads", [])
    check(bool(workloads), "kv_fleet: no workloads")
    for w in workloads:
        name = w.get("name", "?")
        c = w["counters"]
        hist = w["latency_us"]
        expected = w["sites"] * w["rounds"]
        check(w["request_errors"] == 0,
              f"{name}: {w['request_errors']} request errors")
        check(w["publishes"] == expected,
              f"{name}: {w['publishes']} publishes for {w['sites']} sites x "
              f"{w['rounds']} rounds, expected {expected}")
        check(hist["count"] == w["publishes"],
              f"{name}: histogram holds {hist['count']} samples for "
              f"{w['publishes']} publishes")
        check(hist["min_us"] <= hist["p50_us"] <= hist["p99_us"]
              <= hist["p999_us"] <= hist["max_us"],
              f"{name}: percentiles not monotone: {hist}")
        check(hist["min_us"] <= hist["mean_us"] <= hist["max_us"],
              f"{name}: mean outside [min, max]: {hist}")
        check(c["server_errors"] == 0,
              f"{name}: {c['server_errors']} server errors")
        check(c["server_requests"] >= w["publishes"],
              f"{name}: server saw {c['server_requests']} requests for "
              f"{w['publishes']} publishes")
        for dropped in ("server_dropped_backpressure", "server_dropped_idle",
                        "server_dropped_protocol"):
            check(c[dropped] == 0, f"{name}: {c[dropped]} {dropped}")
        check(c["client_failures"] == 0,
              f"{name}: {c['client_failures']} client failures")
        check(c["client_connects"] == w["workers"],
              f"{name}: {c['client_connects']} connects for {w['workers']} "
              f"workers, expected one persistent connection each")
        check(c["live_slices"] == w["sites"],
              f"{name}: {c['live_slices']} live slices for {w['sites']} sites")


CHECKERS = {
    "armus.bench.incremental_scan.v1": check_incremental_scan,
    "armus.bench.net_store.v1": check_net_store,
    "armus.bench.kv_fleet.v1": check_kv_fleet,
}

# The perf-trajectory metrics per schema: (label, path into the doc,
# direction). "lower" metrics may grow by at most the drift factor;
# "higher" metrics may shrink by at most it.
DRIFT_METRICS = {
    "armus.bench.incremental_scan.v1": [
        ("steady_state_local.incremental_ns_per_scan",
         ("steady_state_local", "incremental_ns_per_scan"), "lower"),
        ("steady_state_local.speedup",
         ("steady_state_local", "speedup"), "higher"),
        ("one_site_churn.ns_per_churn_round",
         ("one_site_churn", "ns_per_churn_round"), "lower"),
        ("one_site_churn_kv.ns_per_churn_round",
         ("one_site_churn_kv", "ns_per_churn_round"), "lower"),
        ("full_churn.ns_per_churn_round",
         ("full_churn", "ns_per_churn_round"), "lower"),
    ],
    "armus.bench.net_store.v1": [
        ("publish_latency.p50_us",
         ("publish_latency", "latency_us", "p50_us"), "lower"),
        ("publish_latency.p99_us",
         ("publish_latency", "latency_us", "p99_us"), "lower"),
    ],
    # CI sweeps --sites 200; the committed baseline holds the same single
    # workload.
    "armus.bench.kv_fleet.v1": [
        ("fleet_200.p50_us", ("fleet_200", "latency_us", "p50_us"), "lower"),
        ("fleet_200.p99_us", ("fleet_200", "latency_us", "p99_us"), "lower"),
        ("fleet_200.requests_per_sec",
         ("fleet_200", "requests_per_sec"), "higher"),
    ],
}


def metric_value(doc, path):
    """Resolves ("workload_name", "key"...) against a bench doc."""
    node = require(doc.get("workloads", []), path[0])
    for key in path[1:]:
        if node is None:
            return None
        node = node.get(key)
    return node


def check_drift(doc, baseline, source, max_drift):
    schema = doc.get("schema")
    if baseline.get("schema") != schema:
        check(False, f"{source}: baseline schema {baseline.get('schema')!r} "
                     f"!= {schema!r}")
        return
    for label, path, direction in DRIFT_METRICS.get(schema, []):
        current = metric_value(doc, path)
        pinned = metric_value(baseline, path)
        if current is None or pinned is None or pinned <= 0:
            check(False, f"{source}: drift metric {label} missing "
                         f"(current {current!r}, baseline {pinned!r})")
            continue
        ratio = current / pinned
        if direction == "lower":
            check(ratio <= max_drift,
                  f"{source}: {label} drifted {ratio:.2f}x over baseline "
                  f"({current} vs {pinned}, limit {max_drift}x)")
        else:
            check(ratio >= 1.0 / max_drift,
                  f"{source}: {label} dropped to {ratio:.2f}x of baseline "
                  f"({current} vs {pinned}, limit 1/{max_drift}x)")


def main():
    argv = sys.argv[1:]
    baseline_path = None
    max_drift = 5.0
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--baseline" and i + 1 < len(argv):
            baseline_path = argv[i + 1]
            i += 2
        elif argv[i] == "--max-drift" and i + 1 < len(argv):
            max_drift = float(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if not paths:
        print(__doc__)
        return 2

    baseline = None
    if baseline_path is not None:
        with open(baseline_path) as f:
            baseline = json.load(f)

    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        schema = doc.get("schema")
        checker = CHECKERS.get(schema)
        if checker is None:
            check(False, f"{path}: unknown schema {schema!r} "
                         f"(known: {sorted(CHECKERS)})")
            continue
        checker(doc)
        if baseline is not None:
            check_drift(doc, baseline, path, max_drift)

    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    suffix = (f" and stay within {max_drift}x of {baseline_path}"
              if baseline is not None else "")
    print(f"ok: {', '.join(paths)} satisfy the bench counter "
          f"invariants{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
