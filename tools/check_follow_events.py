#!/usr/bin/env python3
"""Validates an `armus-top --follow --json` capture (armus.kv.event.v1
JSONL, docs/OBSERVABILITY.md §4).

Usage: check_follow_events.py EVENTS_JSONL [options]

  EVENTS_JSONL          file of raw event lines, one JSON object per line
  --require-sites A,B   a slice_commit event must be present for every
                        listed site id
  --require-blocked     those slice_commit events must report blocked > 0
                        (the held-deadlock e2e: the push stream alone is
                        enough to see both sites stuck)
  --require-event NAME  at least one event of this name present (may be
                        repeated)
  --forbid-event NAME   no event of this name present (may be repeated)

Every line must parse as JSON with the v1 envelope ("v":1, "event",
"ts_ns") — a torn or malformed line is a failure, because the consumer
contract (net::WatchClient) is that frames arrive whole or the stream
dies cleanly. Exit 0 when all requested invariants hold, 1 otherwise
(one FAIL line each). Stdlib only, same as the other CI checkers.
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(usage=__doc__)
    parser.add_argument("events_jsonl")
    parser.add_argument("--require-sites", default="")
    parser.add_argument("--require-blocked", action="store_true")
    parser.add_argument("--require-event", action="append", default=[])
    parser.add_argument("--forbid-event", action="append", default=[])
    args = parser.parse_args()

    failures = []

    def check(cond, message):
        if not cond:
            failures.append(message)

    events = []
    with open(args.events_jsonl) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                check(False, f"line {lineno} is not JSON ({e}): {line!r}")
                continue
            check(doc.get("v") == 1,
                  f"line {lineno}: \"v\" is {doc.get('v')!r}, expected 1")
            check("event" in doc, f"line {lineno}: no \"event\" field")
            check("ts_ns" in doc, f"line {lineno}: no \"ts_ns\" field")
            events.append(doc)

    check(events, f"{args.events_jsonl} holds no events")

    if args.require_sites:
        want = [int(s) for s in args.require_sites.split(",") if s]
        commits = [e for e in events if e.get("event") == "slice_commit"]
        for site in want:
            mine = [e for e in commits if e.get("site") == site]
            check(mine, f"no slice_commit event for site {site}")
            if args.require_blocked:
                check(any(e.get("blocked", 0) > 0 for e in mine),
                      f"site {site} never pushed a blocked slice "
                      f"(commits: {mine})")

    names = [e.get("event") for e in events]
    for name in args.require_event:
        check(name in names, f"no {name!r} event in the capture")
    for name in args.forbid_event:
        check(name not in names,
              f"{names.count(name)} {name!r} events present, expected none")

    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    print(f"ok: {args.events_jsonl} holds {len(events)} well-formed "
          f"armus.kv.event.v1 events satisfying the requested invariants")
    return 0


if __name__ == "__main__":
    sys.exit(main())
