#!/usr/bin/env python3
"""Checks that relative markdown links resolve to real files.

Usage: check_md_links.py [path ...]

Each path is a markdown file or a directory to scan recursively for
*.md. External links (http/https/mailto) are not fetched — CI must not
depend on the internet — and pure same-file anchors (#section) are
accepted. A relative link's target must exist on disk, relative to the
file containing it. Exit status 1 when any link is broken.

Stdlib only, so it runs identically in CI and on a bare dev box.
"""

import re
import sys
from pathlib import Path

# [text](target) — excluding images' leading ! is unnecessary: image
# targets must exist too. Stops at the first unescaped ')'.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def collect(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path
        else:
            print(f"warning: skipping non-markdown argument {path}")


def check_file(md: Path) -> list:
    broken = []
    text = md.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            if target.startswith("#"):
                continue  # same-file anchor
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (md.parent / rel).exists():
                broken.append((md, lineno, target))
    return broken


def main(argv):
    paths = argv[1:] or ["."]
    files = list(collect(paths))
    if not files:
        print("error: no markdown files found")
        return 1
    broken = []
    checked = 0
    for md in files:
        file_broken = check_file(md)
        broken.extend(file_broken)
        checked += 1
    for md, lineno, target in broken:
        print(f"{md}:{lineno}: broken link -> {target}")
    print(f"checked {checked} markdown file(s): "
          f"{'all links ok' if not broken else f'{len(broken)} broken'}")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
