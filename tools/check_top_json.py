#!/usr/bin/env python3
"""Validates `armus-top --once --json` output (schema armus.top.v1).

Usage: check_top_json.py TOP_JSON [options]

  TOP_JSON            file holding one armus.top.v1 JSON line
  --require-sites N   at least N sites present in the per-site table
  --require-blocked   every present site reports blocked > 0
  --require-cycle     at least one deadlock in the merged snapshot
  --cross-process     some deadlock spans the per-process task-id ranges
                      of the two-process demo (min task < 2^32 <= max
                      task), i.e. no single process held the whole cycle
  --require-role R    the store header reports this HA role ("primary" or
                      "replica"); a replica must also carry the
                      replication fields (primary, lag_versions)
  --dot FILE          a GraphViz dump from `armus-top --dot`: every task
                      of every deadlock must appear in it

Exit 0 when all requested invariants hold, 1 otherwise (with one FAIL
line each). CI polls this until the observation window of the demo's
ARMUS_DEMO_HOLD_MS opens. Stdlib only.
"""

import argparse
import json
import sys

SITE_TASK_RANGE = 1 << 32  # task-id stride of the two-process demo


def main():
    parser = argparse.ArgumentParser(usage=__doc__)
    parser.add_argument("top_json")
    parser.add_argument("--require-sites", type=int, default=0)
    parser.add_argument("--require-blocked", action="store_true")
    parser.add_argument("--require-cycle", action="store_true")
    parser.add_argument("--cross-process", action="store_true")
    parser.add_argument("--require-role", choices=("primary", "replica"))
    parser.add_argument("--dot")
    args = parser.parse_args()

    with open(args.top_json) as f:
        doc = json.load(f)

    failures = []

    def check(cond, message):
        if not cond:
            failures.append(message)

    check(doc.get("schema") == "armus.top.v1",
          f"schema is {doc.get('schema')!r}, expected 'armus.top.v1'")
    sites = doc.get("sites", [])
    deadlocks = doc.get("deadlocks", [])

    if args.require_sites:
        check(len(sites) >= args.require_sites,
              f"{len(sites)} sites present, need {args.require_sites}")
    if args.require_blocked:
        for site in sites:
            check(site.get("blocked", 0) > 0,
                  f"site {site.get('site')} reports no blocked tasks")
    if args.require_cycle:
        check(len(deadlocks) > 0, "no deadlock in the merged snapshot")
    if args.require_role:
        store = doc.get("store", {})
        role = store.get("role")
        check(role == args.require_role,
              f"store role is {role!r}, expected {args.require_role!r}")
        if args.require_role == "replica":
            check(store.get("primary"),
                  "replica reports no primary address")
            check("lag_versions" in store,
                  "replica reports no lag_versions")
    if args.cross_process:
        spanning = [d for d in deadlocks if d.get("tasks")
                    and min(d["tasks"]) < SITE_TASK_RANGE <= max(d["tasks"])]
        check(spanning,
              f"no deadlock spans both processes' task-id ranges "
              f"(deadlocks: {deadlocks})")
    if args.dot:
        with open(args.dot) as f:
            dot = f.read()
        check("digraph" in dot, f"{args.dot} is not a GraphViz digraph")
        for d in deadlocks:
            for task in d.get("tasks", []):
                check(f"t{task}" in dot or str(task) in dot,
                      f"deadlocked task {task} missing from {args.dot}")

    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    print(f"ok: {args.top_json} satisfies the requested armus.top.v1 "
          f"invariants")
    return 0


if __name__ == "__main__":
    sys.exit(main())
